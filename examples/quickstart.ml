(* Quickstart: learn a ridge linear regression model over a multi-relation
   database WITHOUT materialising the join.

   The flow (paper Figure 2, bottom):
     1. describe the database (relations joined by a natural join),
     2. say which attributes are features and which is the response,
     3. the covariance aggregate batch is synthesised and evaluated by the
        LMFAO engine over the base relations,
     4. gradient descent runs on the tiny aggregate payload.

   Run with:  dune exec examples/quickstart.exe *)

open Relational

let () =
  (* a toy sales database: Orders(fact) + Products + Stores *)
  let products =
    Relation.of_list "Products"
      (Schema.make [ ("product", Value.TInt); ("price", Value.TFloat); ("organic", Value.TInt) ])
      [
        [| Int 0; Float 2.0; Int 0 |];
        [| Int 1; Float 3.5; Int 1 |];
        [| Int 2; Float 1.0; Int 0 |];
        [| Int 3; Float 7.5; Int 1 |];
      ]
  in
  let stores =
    Relation.of_list "Stores"
      (Schema.make [ ("store", Value.TInt); ("city", Value.TInt); ("floor_space", Value.TFloat) ])
      [
        [| Int 0; Int 0; Float 120.0 |];
        [| Int 1; Int 0; Float 80.0 |];
        [| Int 2; Int 1; Float 500.0 |];
      ]
  in
  let orders =
    let rng = Util.Prng.create 7 in
    let rel =
      Relation.create "Orders"
        (Schema.make [ ("store", Value.TInt); ("product", Value.TInt); ("units", Value.TFloat) ])
    in
    for _ = 1 to 500 do
      let store = Util.Prng.int rng 3 and product = Util.Prng.int rng 4 in
      let price = Value.to_float (Relation.get products product).(1) in
      let space = Value.to_float (Relation.get stores store).(2) in
      (* planted signal: cheap products and big stores sell more *)
      let units =
        (10.0 -. price) +. (space /. 50.0)
        +. Util.Prng.gaussian rng ~mu:0.0 ~sigma:0.5
      in
      Relation.append rel [| Int store; Int product; Float units |]
    done;
    rel
  in
  let db = Database.create "shop" [ orders; products; stores ] in
  Format.printf "%a@." Database.pp db;

  (* feature roles *)
  let features =
    Aggregates.Feature.make ~response:"units"
      ~continuous:[ "price"; "floor_space" ]
      ~categorical:[ "organic"; "city" ] ()
  in

  (* structure-aware training: batch -> LMFAO -> gradient descent *)
  let run = Ml.Model_intf.timed_fit (module Ml.Linreg.Model) db features in
  Printf.printf "aggregate batch: %d aggregates in %s; optimisation: %s\n"
    run.aggregate_count
    (Util.Timing.to_string run.stats_seconds)
    (Util.Timing.to_string run.solve_seconds);

  Printf.printf "\nlearned weights:\n";
  Array.iteri
    (fun i c -> Printf.printf "  %-16s %+8.4f\n" c run.model.weights.(i))
    run.model.feature_columns;

  (* evaluate on the (here small enough to materialise) join *)
  let join = Database.materialise_join db in
  Printf.printf "\ntrain RMSE over %d join rows: %.4f (noise sigma was 0.5)\n"
    (Relation.cardinality join)
    (Ml.Linreg.rmse_on run.model join);

  (* predict for a new context *)
  let prediction =
    Ml.Linreg.predict run.model (function
      | "price" -> Value.Float 2.5
      | "floor_space" -> Value.Float 400.0
      | "organic" -> Value.Int 1
      | "city" -> Value.Int 1
      | _ -> Value.Null)
  in
  Printf.printf "predicted units for a new (price 2.5, space 400, organic, city 1): %.2f\n"
    prediction
