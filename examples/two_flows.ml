(* Figure 2 end to end: the SAME learning task through the
   structure-agnostic flow (materialise join -> export -> one-hot -> SGD)
   and the structure-aware flow (aggregate batch -> optimisation), with
   timings and accuracies side by side.

   Run with:  dune exec examples/two_flows.exe
   (BORG_SCALE scales the dataset; default keeps it to a couple seconds) *)

let () =
  let scale =
    match Sys.getenv_opt "BORG_SCALE" with
    | Some s -> (try float_of_string s with _ -> 0.2)
    | None -> 0.2
  in
  let db = Datagen.Retailer.generate ~scale ~seed:11 () in
  let features = Datagen.Retailer.features in
  Printf.printf "retailer database: %d tuples across %d relations\n"
    (Relational.Database.total_cardinality db)
    (List.length (Relational.Database.relations db));

  (* ---- the red flow: structure-agnostic ---- *)
  Printf.printf "\n[structure-agnostic] materialise -> export -> one-hot -> SGD\n";
  let report = Baseline.Agnostic.run db features in
  Printf.printf "  join:       %s (%d rows, %s as CSV)\n"
    (Util.Timing.to_string report.join_seconds)
    report.join_cardinality
    (Printf.sprintf "%.1f MB" (float_of_int report.join_csv_bytes /. 1e6));
  Printf.printf "  data move:  %s\n" (Util.Timing.to_string report.export_seconds);
  Printf.printf "  preprocess: %s\n" (Util.Timing.to_string report.shuffle_seconds);
  Printf.printf "  learn:      %s\n" (Util.Timing.to_string report.learn_seconds);
  Printf.printf "  TOTAL:      %s, test RMSE %.3f\n"
    (Util.Timing.to_string (Baseline.Agnostic.total_seconds report))
    report.rmse;

  (* ---- the blue flow: structure-aware ---- *)
  Printf.printf "\n[structure-aware] aggregate batch -> optimisation\n";
  let run = Ml.Model_intf.timed_fit (module Ml.Linreg.Model) db features in
  let total = run.stats_seconds +. run.solve_seconds in
  Printf.printf "  batch:      %s (%d aggregates; join never materialised)\n"
    (Util.Timing.to_string run.stats_seconds)
    run.aggregate_count;
  Printf.printf "  learn:      %s (%d optimisation steps)\n"
    (Util.Timing.to_string run.solve_seconds)
    run.model.iterations_run;
  let join = Relational.Database.materialise_join db in
  Printf.printf "  TOTAL:      %s, train RMSE %.3f\n" (Util.Timing.to_string total)
    (Ml.Linreg.rmse_on run.model join);

  Printf.printf "\nstructure-aware speedup: %.1fx\n"
    (Baseline.Agnostic.total_seconds report /. total)
