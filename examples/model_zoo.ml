(* The model zoo: every learning task of the paper's Section 2, trained over
   the same retailer database through the structure-aware path — one
   aggregate batch each, the join never materialised (except to report
   evaluation metrics at the end).

   Run with:  dune exec examples/model_zoo.exe *)

open Relational

let () =
  let db = Datagen.Retailer.generate ~scale:0.05 ~seed:99 () in
  let join = Database.materialise_join db in
  let features = Datagen.Retailer.features in
  Printf.printf "retailer at 1/20 scale: %d tuples, join of %d rows\n\n"
    (Database.total_cardinality db)
    (Relation.cardinality join);

  (* 1. ridge linear regression (Section 2.1) *)
  let lin = Ml.Model_intf.timed_fit (module Ml.Linreg.Model) db features in
  Printf.printf "[linear regression]   %4d aggregates, RMSE %.2f\n"
    lin.aggregate_count
    (Ml.Linreg.rmse_on lin.model join);

  (* 2. degree-2 polynomial regression (Section 2.1) *)
  let poly =
    let moment, _batch =
      Ml.Monomial.moment_of_database db
        ~features:[ "prize"; "maxtemp"; "avghhi" ]
        ~response:"inventoryunits"
    in
    Ml.Polyreg.train_from_monomial_moments moment
  in
  Printf.printf "[polynomial (deg 2)]  %4d basis monomials, RMSE %.2f\n"
    (List.length poly.basis_monomials)
    (Ml.Polyreg.rmse_on poly join);

  (* 3. CART regression tree (Section 2.2) *)
  let rtree =
    Ml.Decision_tree.train
      ~params:{ Ml.Decision_tree.default_params with max_depth = 3 }
      db features
  in
  Printf.printf "[regression tree]     %4d nodes, RMSE %.2f\n"
    (Ml.Decision_tree.size rtree)
    (Ml.Decision_tree.rmse_on rtree join ~response:"inventoryunits");

  (* 4. classification tree on a derived label (Section 2.2) *)
  let labeled =
    Lmfao.Derived.augment db
      [ ("inventoryunits", "highstock", fun v -> if Value.to_float v > 100.0 then 1 else 0) ]
  in
  let cls_features =
    Aggregates.Feature.make ~thresholds_per_feature:10
      ~continuous:[ "prize"; "tot_area_sq_ft"; "avghhi" ]
      ~categorical:[ "category"; "rain" ] ()
  in
  let ctree =
    Ml.Classification_tree.train
      ~params:{ Ml.Classification_tree.default_params with max_depth = 3 }
      labeled ~class_attr:"highstock" cls_features
  in
  let labeled_join = Database.materialise_join labeled in
  Printf.printf "[classification tree] %4d nodes, accuracy %.3f\n"
    (Ml.Classification_tree.size ctree)
    (Ml.Classification_tree.accuracy ctree labeled_join ~class_attr:"highstock");

  (* 5. PCA from the covariance ring (Section 2.1) *)
  let cov = Baseline.Acdc.stage2_shared db ~features:Datagen.Retailer.ivm_features in
  let comps = Ml.Pca.components ~k:2 cov in
  Printf.printf "[pca]                 top-2 components explain %.0f%% of variance\n"
    (100.0 *. Ml.Pca.explained_variance cov comps);

  (* 6. Rk-means over a grid coreset (Section 3.3) *)
  let km = Ml.Kmeans.rk_means ~k:4 ~cells:16 db ~dims:[ "prize"; "maxtemp" ] in
  Printf.printf "[rk-means]            %4d centroids, coreset cost %.0f\n"
    (Array.length km.centroids) km.cost;

  (* 7. Chow-Liu dependency tree from mutual information (Figure 5) *)
  let cl =
    Ml.Chow_liu.tree_over_database db
      [ "subcategory"; "category"; "categoryCluster"; "rain"; "snow"; "thunder" ]
  in
  Printf.printf "[chow-liu]            strongest dependency: %s\n"
    (match cl with
    | { Ml.Chow_liu.a; b; mi } :: _ -> Printf.sprintf "%s -- %s (MI %.3f)" a b mi
    | [] -> "none");

  (* 8. model selection from one covariance matrix (Section 1.5) *)
  let batch = Aggregates.Batch.covariance features in
  let table = Lazy.force (Lmfao.Engine.eval db batch).Lmfao.Engine.table in
  let moment = Ml.Moment.of_batch features (Hashtbl.find table) in
  let best, trail = Ml.Model_selection.forward_selection ~max_features:5 moment in
  Printf.printf "[model selection]     %d greedy rounds -> {%s}\n"
    (List.length trail)
    (String.concat ", " best.columns);

  (* 9. QR decomposition from the moments (Section 2.1) *)
  let r, cols = Ml.Qr.r_of_moment ~ridge:1e-6 moment in
  Printf.printf "[qr]                  R factor over %d columns (upper: %b)\n"
    (Array.length cols) (Ml.Qr.is_upper_triangular r);

  (* 10. functional dependencies shrink the batch (Section 3.2) *)
  let fds =
    List.filter
      (fun (fd : Ml.Fd.fd) -> fd.dependent = "category")
      (Ml.Fd.discover db [ "subcategory"; "category" ])
  in
  let reduced, dropped = Ml.Fd.reduced_covariance_batch features fds in
  Printf.printf
    "[functional deps]     subcategory -> category drops %d of %d aggregates\n"
    (List.length dropped)
    (Aggregates.Batch.size reduced + List.length dropped);

  Printf.printf "\nten models, one database, zero materialised data matrices (well,\n\
                 one — but only to print the metrics above).\n"
