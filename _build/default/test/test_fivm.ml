(* Tests for incremental view maintenance: after any random sequence of
   inserts and deletes, every strategy's maintained covariance matrix equals
   the from-scratch recomputation, and all three strategies agree. *)

open Relational
module Cov = Rings.Covariance
module M = Fivm.Maintainer
module Delta = Fivm.Delta

let int n = Value.Int n
let flt x = Value.Float x

(* Star schema: F(a,b,m) with D1(a,u), D2(b,v); numeric features m,u,v. *)
let empty_db () =
  Database.create "stream"
    [
      Relation.create "F" (Schema.make [ ("a", Value.TInt); ("b", Value.TInt); ("m", Value.TFloat) ]);
      Relation.create "D1" (Schema.make [ ("a", Value.TInt); ("u", Value.TFloat) ]);
      Relation.create "D2" (Schema.make [ ("b", Value.TInt); ("v", Value.TFloat) ]);
    ]

let features = [ "m"; "u"; "v" ]

let random_update rng inserted =
  (* mostly inserts; deletes replay an earlier insert *)
  let fresh () =
    let rel = [| "F"; "D1"; "D2" |].(Util.Prng.int rng 3) in
    let tuple =
      match rel with
      | "F" -> [| int (Util.Prng.int rng 4); int (Util.Prng.int rng 4); flt (float_of_int (Util.Prng.int rng 5)) |]
      | "D1" -> [| int (Util.Prng.int rng 4); flt (float_of_int (Util.Prng.int rng 5)) |]
      | _ -> [| int (Util.Prng.int rng 4); flt (float_of_int (Util.Prng.int rng 5)) |]
    in
    Delta.insert rel tuple
  in
  if !inserted <> [] && Util.Prng.int rng 4 = 0 then begin
    (* delete a random previously inserted tuple *)
    let arr = Array.of_list !inserted in
    let u = Util.Prng.choice rng arr in
    inserted := List.filter (fun x -> x != u) !inserted;
    Delta.delete u.Delta.relation u.Delta.tuple
  end
  else begin
    let u = fresh () in
    inserted := u :: !inserted;
    u
  end

let covariance_from_flat db =
  (* reference: materialise the join of the storage contents *)
  let join = Database.materialise_join db in
  let schema = Relation.schema join in
  let positions = List.map (Schema.position schema) features in
  let acc = Cov.Acc.create (List.length features) in
  Relation.iter
    (fun t ->
      Cov.Acc.add_tuple acc
        (Array.of_list (List.map (fun p -> Value.to_float t.(p)) positions)))
    join;
  Cov.Acc.freeze acc

let run_updates strategy updates =
  let m = M.create strategy (empty_db ()) ~features in
  List.iter (M.apply m) updates;
  m

let maintained_equals_recomputed strategy =
  QCheck2.Test.make ~count:30
    ~name:
      (Printf.sprintf "%s: maintained = recomputed" (M.strategy_name strategy))
    QCheck2.Gen.(pair (int_range 0 60) int)
    (fun (steps, seed) ->
      let rng = Util.Prng.create seed in
      let inserted = ref [] in
      let updates = List.init steps (fun _ -> random_update rng inserted) in
      let m = run_updates strategy updates in
      Cov.equal ~eps:1e-6 (M.covariance m) (M.recompute m))

let strategies_agree =
  QCheck2.Test.make ~count:20 ~name:"all three strategies agree"
    QCheck2.Gen.(pair (int_range 0 50) int)
    (fun (steps, seed) ->
      let rng = Util.Prng.create seed in
      let inserted = ref [] in
      let updates = List.init steps (fun _ -> random_update rng inserted) in
      let a = M.covariance (run_updates M.F_ivm updates) in
      let b = M.covariance (run_updates M.Higher_order updates) in
      let c = M.covariance (run_updates M.First_order updates) in
      Cov.equal ~eps:1e-6 a b && Cov.equal ~eps:1e-6 b c)

(* deterministic end-to-end check against a flat-join reference *)
let test_against_flat_join () =
  let rng = Util.Prng.create 2024 in
  let inserted = ref [] in
  let updates = List.init 120 (fun _ -> random_update rng inserted) in
  let m = run_updates M.F_ivm updates in
  (* replay the surviving multiset into a database *)
  let db = empty_db () in
  let counts = Hashtbl.create 64 in
  List.iter
    (fun (u : Delta.update) ->
      let k = (u.relation, u.tuple) in
      let c = Option.value ~default:0 (Hashtbl.find_opt counts k) in
      Hashtbl.replace counts k (c + u.multiplicity))
    updates;
  Hashtbl.iter
    (fun (rel, tuple) c ->
      for _ = 1 to c do
        Relation.append (Database.relation db rel) tuple
      done)
    counts;
  Alcotest.(check bool)
    "F-IVM matches flat-join covariance" true
    (Cov.equal ~eps:1e-6 (M.covariance m) (covariance_from_flat db))

let test_insert_then_delete_is_identity () =
  let m = M.create M.F_ivm (empty_db ()) ~features in
  let us =
    [
      Delta.insert "F" [| int 1; int 2; flt 3.0 |];
      Delta.insert "D1" [| int 1; flt 4.0 |];
      Delta.insert "D2" [| int 2; flt 5.0 |];
    ]
  in
  List.iter (M.apply m) us;
  Alcotest.(check (float 1e-9)) "one join tuple" 1.0 (Cov.count (M.covariance m));
  (* delete everything in reverse *)
  List.iter
    (fun (u : Delta.update) -> M.apply m (Delta.delete u.relation u.tuple))
    (List.rev us);
  Alcotest.(check (float 1e-9)) "back to empty" 0.0 (Cov.count (M.covariance m))

let test_bulk_multiplicity () =
  let m = M.create M.F_ivm (empty_db ()) ~features in
  M.apply m { Delta.relation = "F"; tuple = [| int 1; int 1; flt 2.0 |]; multiplicity = 3 };
  M.apply m (Delta.insert "D1" [| int 1; flt 1.0 |]);
  M.apply m (Delta.insert "D2" [| int 1; flt 1.0 |]);
  Alcotest.(check (float 1e-9)) "3 join tuples" 3.0 (Cov.count (M.covariance m));
  Alcotest.(check (float 1e-9)) "sum m = 6" 6.0
    (Util.Vec.get (Cov.sums (M.covariance m)) 0)

let test_throughput_sanity () =
  (* F-IVM should process a small stream strictly faster than first-order on
     a join with fan-out; this is the Figure 4 (right) shape at toy scale.
     Only a sanity check (no strict timing assertion, just completion). *)
  let rng = Util.Prng.create 7 in
  let inserted = ref [] in
  let updates = List.init 300 (fun _ -> random_update rng inserted) in
  let m = run_updates M.F_ivm updates in
  Alcotest.(check bool) "non-trivial state" true (Cov.count (M.covariance m) >= 0.0)

(* ---- stream generation ---- *)

let test_stream_dimensions_first () =
  let db = Datagen.Retailer.generate ~scale:0.01 ~seed:8 () in
  let stream = Datagen.Stream_gen.inserts_of_database db in
  let fact_card =
    List.fold_left
      (fun acc r -> Stdlib.max acc (Relation.cardinality r))
      0 (Database.relations db)
  in
  Alcotest.(check int) "stream covers the database"
    (Database.total_cardinality db) (List.length stream);
  (* the LAST fact_card updates are all fact inserts *)
  let tail =
    List.filteri
      (fun i _ -> i >= List.length stream - fact_card)
      stream
  in
  Alcotest.(check bool) "facts last" true
    (List.for_all (fun (u : Delta.update) -> u.relation = "Inventory") tail)

let test_churn_nets_to_database () =
  let db = Datagen.Retailer.generate ~scale:0.01 ~seed:9 () in
  let stream = Datagen.Stream_gen.with_churn ~churn:0.3 db in
  let net = Hashtbl.create 64 in
  List.iter
    (fun (u : Delta.update) ->
      let k = (u.relation, u.tuple) in
      Hashtbl.replace net k
        (u.multiplicity + Option.value ~default:0 (Hashtbl.find_opt net k)))
    stream;
  let total = Hashtbl.fold (fun _ m acc -> acc + m) net 0 in
  Alcotest.(check int) "net content = database" (Database.total_cardinality db) total

let test_view_sizes_reported () =
  let m = M.create M.F_ivm (empty_db ()) ~features in
  M.apply m (Delta.insert "F" [| int 1; int 2; flt 3.0 |]);
  match m with
  | _ ->
      (* access through the storage: three relations tracked *)
      let s = M.storage m in
      Alcotest.(check int) "one stored tuple" 1 (Fivm.Storage.total_tuples s)

let test_obs_counters_track_batch () =
  let m = M.create M.F_ivm (empty_db ()) ~features in
  let batch =
    [
      Delta.insert "F" [| int 1; int 2; flt 3.0 |];
      Delta.insert "D1" [| int 1; flt 1.0 |];
      Delta.insert "D2" [| int 2; flt 1.0 |];
      { Delta.relation = "F"; tuple = [| int 1; int 2; flt 5.0 |]; multiplicity = 2 };
    ]
  in
  Obs.reset ();
  Obs.with_enabled true (fun () -> M.apply_batch m batch);
  Alcotest.(check int) "fivm.updates = batch length" (List.length batch)
    (Obs.counter_value_by_name "fivm.updates");
  Alcotest.(check int) "fivm.delta_tuples sums multiplicities" 5
    (Obs.counter_value_by_name "fivm.delta_tuples");
  Alcotest.(check int) "fivm.batches" 1 (Obs.counter_value_by_name "fivm.batches");
  (* the end-of-batch gauges reflect the maintainer's own accessors *)
  Alcotest.(check (float 0.0)) "fivm.view_rows gauge"
    (float_of_int (M.view_rows m))
    (Obs.gauge_value (Obs.gauge "fivm.view_rows"));
  Alcotest.(check (float 0.0)) "fivm.storage_tuples gauge"
    (float_of_int (Fivm.Storage.total_tuples (M.storage m)))
    (Obs.gauge_value (Obs.gauge "fivm.storage_tuples"));
  Obs.reset ()

(* ---- triangle maintenance (cyclic IVM) ---- *)
module Tri = Fivm.Triangle

let triangle_maintained_equals_recomputed =
  QCheck2.Test.make ~count:40 ~name:"triangle count: maintained = recomputed"
    QCheck2.Gen.(pair (int_range 0 80) int)
    (fun (steps, seed) ->
      let rng = Util.Prng.create seed in
      let g = Tri.create () in
      let inserted = ref [] in
      for _ = 1 to steps do
        if !inserted <> [] && Util.Prng.int rng 4 = 0 then begin
          let arr = Array.of_list !inserted in
          let which, x, y = Util.Prng.choice rng arr in
          inserted := List.filter (fun e -> e <> (which, x, y)) !inserted;
          Tri.update g which ~x ~y (-1)
        end
        else begin
          let which = [| Tri.R; Tri.S; Tri.T |].(Util.Prng.int rng 3) in
          let x = int (Util.Prng.int rng 5) and y = int (Util.Prng.int rng 5) in
          inserted := (which, x, y) :: !inserted;
          Tri.update g which ~x ~y 1
        end
      done;
      Tri.count g = Tri.recompute g)

let test_triangle_basics () =
  let g = Tri.create () in
  Tri.update g Tri.R ~x:(int 1) ~y:(int 2) 1;
  Tri.update g Tri.S ~x:(int 2) ~y:(int 3) 1;
  Alcotest.(check int) "no triangle yet" 0 (Tri.count g);
  Tri.update g Tri.T ~x:(int 3) ~y:(int 1) 1;
  Alcotest.(check int) "one triangle" 1 (Tri.count g);
  Tri.update g Tri.R ~x:(int 1) ~y:(int 2) (-1);
  Alcotest.(check int) "deleted" 0 (Tri.count g)

(* ---- cyclic fallback in the LMFAO front end ---- ,*)
let test_eval_on_cyclic () =
  let mk name (a1, a2) rows =
    Relation.of_list name
      (Schema.make [ (a1, Value.TInt); (a2, Value.TInt) ])
      (List.map (fun (x, y) -> [| int x; int y |]) rows)
  in
  let db =
    Database.create "tri"
      [
        mk "R" ("a", "b") [ (0, 1); (1, 2) ];
        mk "S" ("b", "c") [ (1, 2); (2, 0) ];
        mk "T" ("c", "a") [ (2, 0); (0, 1) ];
      ]
  in
  let batch =
    {
      Aggregates.Batch.name = "tri";
      aggregates =
        [
          Aggregates.Spec.count ~id:"n";
          Aggregates.Spec.make ~id:"sa" ~terms:[ ("a", 1) ] ~group_by:[] ();
        ];
    }
  in
  (* triangles: (a=0,b=1,c=2) and (a=1,b=2,c=0) *)
  let results =
    (Lmfao.Engine.eval ~on_cyclic:`Materialize db batch).Lmfao.Engine.keyed
  in
  Alcotest.(check (float 1e-9)) "two triangles" 2.0
    (Aggregates.Spec.scalar_result (List.assoc "n" results));
  Alcotest.(check (float 1e-9)) "sum a over join" 1.0
    (Aggregates.Spec.scalar_result (List.assoc "sa" results))

(* ---- grouped (k-relation payload) maintenance ---- *)

let grouped_maintained_equals_recomputed =
  QCheck2.Test.make ~count:30 ~name:"grouped view: maintained = recomputed"
    QCheck2.Gen.(pair (int_range 0 60) int)
    (fun (steps, seed) ->
      let rng = Util.Prng.create seed in
      let spec =
        Fivm.Grouped_view.Spec.make ~id:"g" ~terms:[ ("m", 1) ]
          ~group_by:[ "u_cat" ] ()
      in
      (* D1 carries a categorical u_cat instead of the float u *)
      let db =
        Database.create "gstream"
          [
            Relation.create "F"
              (Schema.make [ ("a", Value.TInt); ("b", Value.TInt); ("m", Value.TFloat) ]);
            Relation.create "D1" (Schema.make [ ("a", Value.TInt); ("u_cat", Value.TInt) ]);
            Relation.create "D2" (Schema.make [ ("b", Value.TInt); ("v", Value.TFloat) ]);
          ]
      in
      let g = Fivm.Grouped_view.create db spec in
      let inserted = ref [] in
      for _ = 1 to steps do
        let u =
          if !inserted <> [] && Util.Prng.int rng 4 = 0 then begin
            let arr = Array.of_list !inserted in
            let u = Util.Prng.choice rng arr in
            inserted := List.filter (fun x -> x != u) !inserted;
            Delta.delete u.Delta.relation u.Delta.tuple
          end
          else begin
            let rel = [| "F"; "D1"; "D2" |].(Util.Prng.int rng 3) in
            let tuple =
              match rel with
              | "F" ->
                  [| int (Util.Prng.int rng 4); int (Util.Prng.int rng 4);
                     flt (float_of_int (Util.Prng.int rng 5)) |]
              | "D1" -> [| int (Util.Prng.int rng 4); int (Util.Prng.int rng 3) |]
              | _ -> [| int (Util.Prng.int rng 4); flt (float_of_int (Util.Prng.int rng 5)) |]
            in
            let u = Delta.insert rel tuple in
            inserted := u :: !inserted;
            u
          end
        in
        Fivm.Grouped_view.apply g u
      done;
      Fivm.Grouped_view.Spec.result_equal
        (List.sort compare (Fivm.Grouped_view.result g))
        (List.sort compare (Fivm.Grouped_view.recompute g)))

let test_grouped_simple () =
  let db =
    Database.create "g"
      [
        Relation.create "F" (Schema.make [ ("a", Value.TInt); ("m", Value.TFloat) ]);
        Relation.create "D" (Schema.make [ ("a", Value.TInt); ("k", Value.TInt) ]);
      ]
  in
  let spec =
    Fivm.Grouped_view.Spec.make ~id:"s" ~terms:[ ("m", 1) ] ~group_by:[ "k" ] ()
  in
  let g = Fivm.Grouped_view.create db spec in
  Fivm.Grouped_view.apply g (Delta.insert "F" [| int 1; flt 10.0 |]);
  Fivm.Grouped_view.apply g (Delta.insert "D" [| int 1; int 7 |]);
  Fivm.Grouped_view.apply g (Delta.insert "F" [| int 1; flt 5.0 |]);
  (match Fivm.Grouped_view.result g with
  | [ ([ ("k", Value.Int 7) ], v) ] -> Alcotest.(check (float 1e-9)) "15 in group 7" 15.0 v
  | r ->
      Alcotest.failf "unexpected result (%d groups)" (List.length r));
  Fivm.Grouped_view.apply g (Delta.delete "D" [| int 1; int 7 |]);
  Alcotest.(check int) "group vanished" 0 (List.length (Fivm.Grouped_view.result g))

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "fivm"
    [
      ( "maintained-vs-recomputed",
        [
          qcheck (maintained_equals_recomputed M.F_ivm);
          qcheck (maintained_equals_recomputed M.Higher_order);
          qcheck (maintained_equals_recomputed M.First_order);
        ] );
      ("agreement", [ qcheck strategies_agree ]);
      ( "grouped-views",
        [
          qcheck grouped_maintained_equals_recomputed;
          Alcotest.test_case "sum by group under updates" `Quick test_grouped_simple;
        ] );
      ( "triangles",
        [
          qcheck triangle_maintained_equals_recomputed;
          Alcotest.test_case "insert/delete basics" `Quick test_triangle_basics;
          Alcotest.test_case "cyclic fallback (eval)" `Quick test_eval_on_cyclic;
        ] );
      ( "streams",
        [
          Alcotest.test_case "dimensions before facts" `Quick test_stream_dimensions_first;
          Alcotest.test_case "churn nets to database" `Quick test_churn_nets_to_database;
          Alcotest.test_case "storage tracks tuples" `Quick test_view_sizes_reported;
          Alcotest.test_case "obs counters track batch" `Quick
            test_obs_counters_track_batch;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "matches flat-join covariance" `Quick
            test_against_flat_join;
          Alcotest.test_case "insert then delete = identity" `Quick
            test_insert_then_delete_is_identity;
          Alcotest.test_case "bulk multiplicities" `Quick test_bulk_multiplicity;
          Alcotest.test_case "stream completes" `Quick test_throughput_sanity;
        ] );
    ]
