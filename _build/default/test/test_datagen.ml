(* Tests for the synthetic dataset generators: acyclicity, key integrity,
   determinism, scaling, and feature-map consistency for all four datasets. *)

open Relational

type dataset = {
  dname : string;
  generate : ?scale:float -> seed:int -> unit -> Database.t;
  features : Aggregates.Feature.t;
  mi_attrs : string list;
  ivm_features : string list;
}

let datasets =
  [
    {
      dname = "retailer";
      generate = Datagen.Retailer.generate;
      features = Datagen.Retailer.features;
      mi_attrs = Datagen.Retailer.mi_attrs;
      ivm_features = Datagen.Retailer.ivm_features;
    };
    {
      dname = "favorita";
      generate = Datagen.Favorita.generate;
      features = Datagen.Favorita.features;
      mi_attrs = Datagen.Favorita.mi_attrs;
      ivm_features = Datagen.Favorita.ivm_features;
    };
    {
      dname = "yelp";
      generate = Datagen.Yelp.generate;
      features = Datagen.Yelp.features;
      mi_attrs = Datagen.Yelp.mi_attrs;
      ivm_features = Datagen.Yelp.ivm_features;
    };
    {
      dname = "tpcds";
      generate = Datagen.Tpcds.generate;
      features = Datagen.Tpcds.features;
      mi_attrs = Datagen.Tpcds.mi_attrs;
      ivm_features = Datagen.Tpcds.ivm_features;
    };
  ]

let small d = d.generate ~scale:0.02 ~seed:7 ()

let test_acyclic d () =
  let db = small d in
  match Database.join_tree db with
  | _ -> ()
  | exception Join_tree.Cyclic -> Alcotest.fail "cyclic schema"

let test_deterministic d () =
  let a = small d and b = small d in
  List.iter2
    (fun ra rb ->
      Alcotest.(check int)
        (Relation.name ra ^ " cardinality")
        (Relation.cardinality ra) (Relation.cardinality rb);
      Relation.iteri
        (fun i t ->
          if not (Tuple.equal t (Relation.get rb i)) then
            Alcotest.failf "tuple %d differs in %s" i (Relation.name ra))
        ra)
    (Database.relations a) (Database.relations b)

let test_seed_changes_data d () =
  let a = d.generate ~scale:0.02 ~seed:1 () in
  let b = d.generate ~scale:0.02 ~seed:2 () in
  let differs =
    List.exists2
      (fun ra rb ->
        Relation.cardinality ra <> Relation.cardinality rb
        || List.exists2
             (fun ta tb -> not (Tuple.equal ta tb))
             (Relation.to_list ra) (Relation.to_list rb))
      (Database.relations a) (Database.relations b)
  in
  Alcotest.(check bool) "different seeds differ" true differs

let test_joinable d () =
  (* every fact tuple must join: the full join is at least as big as the
     largest relation would suggest for key-fkey schemas — we only check
     non-emptiness and fkey resolution *)
  let db = small d in
  let join = Database.materialise_join db in
  Alcotest.(check bool) "join non-empty" true (Relation.cardinality join > 0)

let test_scaling d () =
  let s1 = d.generate ~scale:0.02 ~seed:3 () in
  let s2 = d.generate ~scale:0.06 ~seed:3 () in
  Alcotest.(check bool) "larger scale, more tuples" true
    (Database.total_cardinality s2 > Database.total_cardinality s1)

let test_features_exist d () =
  let db = small d in
  let attrs = Database.attribute_names db in
  List.iter
    (fun f ->
      Alcotest.(check bool) (f ^ " exists") true (List.mem f attrs))
    (Aggregates.Feature.all d.features @ d.mi_attrs @ d.ivm_features)

let test_lmfao_runs d () =
  (* the covariance batch must run end to end on each dataset *)
  let db = d.generate ~scale:0.01 ~seed:11 () in
  let batch = Aggregates.Batch.covariance d.features in
  let r = Lmfao.Engine.eval db batch in
  let results = r.Lmfao.Engine.keyed and stats = r.Lmfao.Engine.stats in
  Alcotest.(check int) "all aggregates answered"
    (Aggregates.Batch.size batch) (List.length results);
  Alcotest.(check bool) "sharing found" true (stats.shared_away >= 0)

let suite d =
  ( d.dname,
    [
      Alcotest.test_case "acyclic schema" `Quick (test_acyclic d);
      Alcotest.test_case "deterministic per seed" `Quick (test_deterministic d);
      Alcotest.test_case "seed changes data" `Quick (test_seed_changes_data d);
      Alcotest.test_case "join non-empty" `Quick (test_joinable d);
      Alcotest.test_case "scaling monotone" `Quick (test_scaling d);
      Alcotest.test_case "feature attrs exist" `Quick (test_features_exist d);
      Alcotest.test_case "covariance batch via LMFAO" `Quick (test_lmfao_runs d);
    ] )

let () = Alcotest.run "datagen" (List.map suite datasets)
