test/test_lmfao.mli:
