test/test_lmfao.ml: Aggregates Alcotest Database Float Format List Lmfao Obs Predicate Printf QCheck2 QCheck_alcotest Relation Relational Schema String Util Value
