test/test_rings.mli:
