test/test_integration.ml: Aggregates Alcotest Array Baseline Database Datagen Fivm Float List Ml Printf Relation Relational Rings Schema
