test/test_differential.ml: Aggregates Alcotest Array Baseline Database Factorized Float List Lmfao Predicate Printf QCheck2 QCheck_alcotest Relation Relational Schema Stats Util Value
