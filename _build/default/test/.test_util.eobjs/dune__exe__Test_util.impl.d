test/test_util.ml: Alcotest Array Csvio Float Interner List Mat Pool Printf Prng QCheck2 QCheck_alcotest Util Vec
