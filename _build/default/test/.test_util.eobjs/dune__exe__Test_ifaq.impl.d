test/test_ifaq.ml: Alcotest Array Dict_layout Expr Float Format Gd_example Ifaq Interp List Printf QCheck2 QCheck_alcotest Relation Relational Rewrite Schema Value
