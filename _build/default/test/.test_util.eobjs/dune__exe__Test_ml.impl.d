test/test_ml.ml: Aggregates Alcotest Array Baseline Database Float Hashtbl List Lmfao Ml Printf QCheck2 QCheck_alcotest Relation Relational Rings Schema Util Value
