test/test_ml.ml: Aggregates Alcotest Array Baseline Database Float Hashtbl Lazy List Lmfao Ml Printf QCheck2 QCheck_alcotest Relation Relational Rings Schema Util Value
