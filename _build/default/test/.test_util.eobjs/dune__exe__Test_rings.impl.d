test/test_rings.ml: Alcotest Array Fivm Gen List Mat Prng QCheck2 QCheck_alcotest Rings Test Util Vec
