test/test_baseline.ml: Aggregates Alcotest Array Baseline Database Datagen Float List Lmfao Relation Relational Rings Schema Stdlib Util Value
