test/test_fivm.ml: Aggregates Alcotest Array Database Datagen Fivm Hashtbl List Lmfao Obs Option Printf QCheck2 QCheck_alcotest Relation Relational Rings Schema Stdlib Util Value
