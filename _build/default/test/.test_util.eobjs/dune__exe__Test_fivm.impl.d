test/test_fivm.ml: Aggregates Alcotest Array Database Datagen Fivm Hashtbl List Lmfao Option Printf QCheck2 QCheck_alcotest Relation Relational Rings Schema Stdlib Util Value
