test/test_fivm.mli:
