test/test_obs.ml: Alcotest Fun List Obs
