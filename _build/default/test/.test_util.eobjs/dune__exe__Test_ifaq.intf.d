test/test_ifaq.mli:
