test/test_relational.ml: Alcotest Array Database Float Hashtbl Hypergraph Join_tree List Ops Option Predicate Printf QCheck2 QCheck_alcotest Relation Relational Schema Tuple Util Value
