test/test_factorized.mli:
