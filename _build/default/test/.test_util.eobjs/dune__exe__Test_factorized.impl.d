test/test_factorized.ml: Alcotest Array Factorized Float Gen List Ops Printf QCheck2 QCheck_alcotest Relation Relational Rings Schema Test Util Value
