test/test_datagen.ml: Aggregates Alcotest Database Datagen Join_tree List Lmfao Relation Relational Tuple
