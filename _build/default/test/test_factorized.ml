(* Tests for the factorised-database layer: the paper's Section 5.1 worked
   example (Figures 7-9), equivalence of factorised and flat evaluation on
   random acyclic databases, and size accounting. *)

open Relational
module VO = Factorized.Var_order
module Fjoin = Factorized.Fjoin
module Frep = Factorized.Frep
module Fagg = Factorized.Faggregate

let str s = Value.Str s
let int n = Value.Int n
let flt x = Value.Float x

(* The example database of Figure 7. *)
let orders () =
  Relation.of_list "Orders"
    (Schema.make [ ("customer", TStr); ("day", TStr); ("dish", TStr) ])
    [
      [| str "Elise"; str "Monday"; str "burger" |];
      [| str "Elise"; str "Friday"; str "burger" |];
      [| str "Steve"; str "Friday"; str "hotdog" |];
      [| str "Joe"; str "Friday"; str "hotdog" |];
    ]

let dish () =
  Relation.of_list "Dish"
    (Schema.make [ ("dish", TStr); ("item", TStr) ])
    [
      [| str "burger"; str "patty" |];
      [| str "burger"; str "onion" |];
      [| str "burger"; str "bun" |];
      [| str "hotdog"; str "bun" |];
      [| str "hotdog"; str "onion" |];
      [| str "hotdog"; str "sausage" |];
    ]

let items () =
  Relation.of_list "Items"
    (Schema.make [ ("item", TStr); ("price", TFloat) ])
    [
      [| str "patty"; flt 6.0 |];
      [| str "onion"; flt 2.0 |];
      [| str "bun"; flt 2.0 |];
      [| str "sausage"; flt 4.0 |];
    ]

let example_rels () = [ orders (); dish (); items () ]

let example_order rels = VO.of_relations rels

(* --- Figure 7/9: flat join and count --- *)

let test_flat_join_count () =
  let rels = example_rels () in
  let join = Ops.natural_join_all rels in
  Alcotest.(check int) "flat join cardinality" 12 (Relation.cardinality join)

let test_factorised_count () =
  let rels = example_rels () in
  let order = example_order rels in
  Alcotest.(check bool) "order valid" true (VO.valid_for order rels);
  Alcotest.(check int) "COUNT via semiring" 12 (Fjoin.count rels order)

let test_factorised_count_via_frep () =
  let rels = example_rels () in
  let order = example_order rels in
  let f = Fjoin.factorize rels order in
  Alcotest.(check int) "COUNT over f-rep" 12 (Fagg.count f);
  Alcotest.(check int) "tuple_count" 12 (Frep.tuple_count f)

(* --- Figure 9 right: SUM(price) GROUP BY dish --- *)

let test_sum_price_by_dish () =
  let rels = example_rels () in
  let order = example_order rels in
  let f = Fjoin.factorize rels order in
  let grouped = Fagg.sum_grouped ~group_by:[ "dish" ] ~vars:[ "price" ] f in
  let find d =
    match
      List.find_opt (fun (k, _) -> k = [ ("dish", str d) ]) grouped
    with
    | Some (_, v) -> v
    | None -> Alcotest.failf "missing group %s" d
  in
  Alcotest.(check (float 1e-9)) "burger" 20.0 (find "burger");
  Alcotest.(check (float 1e-9)) "hotdog" 16.0 (find "hotdog")

let test_sum_price_total () =
  let rels = example_rels () in
  let order = example_order rels in
  Alcotest.(check (float 1e-9))
    "SUM(price)" 36.0
    (Fjoin.sum_product rels order ~vars:[ "price" ])

(* --- Figure 8: factorisation is smaller than the flat join --- *)

let test_sizes () =
  let rels = example_rels () in
  let order = example_order rels in
  let f = Fjoin.factorize rels order in
  let join = Ops.natural_join_all rels in
  let flat_values = Relation.value_count join in
  let fact_values = Frep.value_count f in
  Alcotest.(check bool)
    (Printf.sprintf "factorised (%d) < flat (%d)" fact_values flat_values)
    true
    (fact_values < flat_values)

(* --- enumeration equals the flat join --- *)

let normalise_rows rel =
  let names = List.sort compare (Schema.names (Relation.schema rel)) in
  List.sort compare
    (List.map
       (fun t ->
         List.map
           (fun a -> (a, Value.to_string (t.(Schema.position (Relation.schema rel) a))))
           names)
       (Relation.to_list rel))

let normalise_envs envs =
  List.sort compare
    (List.map
       (fun env ->
         List.sort compare (List.map (fun (a, v) -> (a, Value.to_string v)) env))
       envs)

let test_enumeration_equals_flat () =
  let rels = example_rels () in
  let order = example_order rels in
  let f = Fjoin.factorize rels order in
  let join = Ops.natural_join_all rels in
  Alcotest.(check bool)
    "same tuple bags" true
    (normalise_rows join = normalise_envs (Frep.enumerate f))

(* --- randomised equivalence on star and chain schemas --- *)

let random_db rng shape =
  (* shape: list of (name, attrs); attrs with equal names join *)
  List.map
    (fun (name, attrs, card, domain) ->
      let schema = Schema.make (List.map (fun a -> (a, Value.TInt)) attrs) in
      let rel = Relation.create name schema in
      for _ = 1 to card do
        Relation.append rel
          (Array.of_list
             (List.map (fun _ -> int (Util.Prng.int rng domain)) attrs))
      done;
      rel)
    shape

let star_shape card domain =
  [
    ("F", [ "a"; "b"; "c" ], card, domain);
    ("D1", [ "a"; "x" ], card, domain);
    ("D2", [ "b"; "y" ], card, domain);
    ("D3", [ "c"; "z" ], card, domain);
  ]

let chain_shape card domain =
  [
    ("R1", [ "a"; "b" ], card, domain);
    ("R2", [ "b"; "c" ], card, domain);
    ("R3", [ "c"; "d" ], card, domain);
  ]

let equivalence_prop shape_fn =
  QCheck2.Test.make ~count:40
    ~name:"factorised count & sum = flat count & sum"
    QCheck2.Gen.(triple (int_range 0 30) (int_range 1 6) int)
    (fun (card, domain, seed) ->
      let rng = Util.Prng.create seed in
      let rels = random_db rng (shape_fn card domain) in
      let order = VO.of_relations rels in
      let join = Ops.natural_join_all rels in
      let flat_count = Relation.cardinality join in
      let fact_count = Fjoin.count rels order in
      let vars = [ List.hd (Schema.names (Relation.schema (List.hd rels))) ] in
      let flat_sum =
        match Ops.aggregate join [ Ops.sum_of_attr (Relation.schema join) (List.hd vars) ] with
        | [ s ] -> s
        | _ -> assert false
      in
      let fact_sum = Fjoin.sum_product rels order ~vars in
      flat_count = fact_count && Float.abs (flat_sum -. fact_sum) < 1e-6 *. (1.0 +. Float.abs flat_sum))

let test_cache_matches_nocache () =
  let rels = example_rels () in
  let order = example_order rels in
  let with_cache = Fjoin.count ~cache:true rels order in
  let without = Fjoin.count ~cache:false rels order in
  Alcotest.(check int) "cache-independent" with_cache without

(* the k-relation lifting is itself a semiring: axioms via qcheck *)
module GF = Factorized.Faggregate.Grouped_float

let gf_gen =
  QCheck2.Gen.(
    let assignment =
      list_size (int_range 0 2)
        (map2
           (fun a v -> (Printf.sprintf "x%d" a, Value.Int v))
           (int_range 0 2) (int_range 0 3))
    in
    let entry = map2 (fun k v -> (List.sort_uniq compare k, float_of_int v)) assignment (int_range (-5) 5) in
    map
      (fun entries ->
        List.fold_left
          (fun acc (k, v) -> GF.add acc (GF.KMap.singleton k v))
          GF.zero entries)
      (list_size (int_range 0 4) entry))

let grouped_semiring_axioms =
  let open QCheck2 in
  [
    Test.make ~count:100 ~name:"grouped: + commutative" (Gen.pair gf_gen gf_gen)
      (fun (a, b) -> GF.equal (GF.add a b) (GF.add b a));
    Test.make ~count:100 ~name:"grouped: + associative" (Gen.triple gf_gen gf_gen gf_gen)
      (fun (a, b, c) -> GF.equal (GF.add (GF.add a b) c) (GF.add a (GF.add b c)));
    Test.make ~count:100 ~name:"grouped: 0/1 neutral" gf_gen (fun a ->
        GF.equal (GF.add GF.zero a) a && GF.equal (GF.mul GF.one a) a);
    Test.make ~count:60 ~name:"grouped: distributivity (disjoint vars)"
      (Gen.triple gf_gen gf_gen gf_gen) (fun (a, b, c) ->
        (* keys of a use x0..x2; make the multiplier range over fresh vars to
           keep variable sets disjoint, as the engines do *)
        let rename =
          GF.KMap.fold
            (fun k v acc ->
              let k' = List.map (fun (x, u) -> ("y" ^ x, u)) k in
              GF.KMap.add (List.sort compare k') v acc)
            c GF.KMap.empty
        in
        GF.equal
          (GF.mul rename (GF.add a b))
          (GF.add (GF.mul rename a) (GF.mul rename b)));
  ]

let test_frep_to_relation () =
  let rels = example_rels () in
  let order = example_order rels in
  let f = Fjoin.factorize rels order in
  let attrs = [ "customer"; "day"; "dish"; "item"; "price" ] in
  let tys = [ Value.TStr; Value.TStr; Value.TStr; Value.TStr; Value.TFloat ] in
  let flat = Frep.to_relation attrs tys f in
  Alcotest.(check int) "12 tuples" 12 (Relation.cardinality flat)

let test_min_plus_over_frep () =
  (* cheapest price reachable per join tuple: min over the join of price *)
  let rels = example_rels () in
  let order = example_order rels in
  let cheapest =
    Fjoin.eval_semiring
      (module Rings.Instances.Min_plus)
      ~lift:(fun var v -> if var = "price" then Value.to_float v else 0.0)
      rels order
  in
  Alcotest.(check (float 1e-9)) "min price in join" 2.0 cheapest

let test_unconstrained_variable_raises () =
  (* a variable covered by no relation: dish -> customer -> day -> ghost *)
  let rels = [ orders () ] in
  let chain var children = { Factorized.Var_order.var; key = []; children } in
  let order =
    chain "dish" [ chain "customer" [ chain "day" [ chain "ghost" [] ] ] ]
  in
  Alcotest.(check bool) "raises" true
    (match Fjoin.count rels order with
    | exception Fjoin.Unconstrained_variable "ghost" -> true
    | _ -> false)

(* ---- worst-case optimal join (cyclic queries) ---- *)
module Wcoj = Factorized.Wcoj

(* naive triangle count by nested loops *)
let naive_triangles r s t =
  let count = ref 0 in
  Relation.iter
    (fun tr ->
      Relation.iter
        (fun ts ->
          if Value.equal tr.(1) ts.(0) then
            Relation.iter
              (fun tt ->
                if Value.equal ts.(1) tt.(0) && Value.equal tt.(1) tr.(0) then
                  incr count)
              t)
        s)
    r;
  !count

let random_edges rng name (a1, a2) card domain =
  let rel = Relation.create name (Schema.make [ (a1, Value.TInt); (a2, Value.TInt) ]) in
  for _ = 1 to card do
    Relation.append rel
      [| int (Util.Prng.int rng domain); int (Util.Prng.int rng domain) |]
  done;
  rel

let wcoj_triangle_count =
  QCheck2.Test.make ~count:40 ~name:"wcoj triangle count = nested loops"
    QCheck2.Gen.(triple (int_range 0 40) (int_range 1 6) int)
    (fun (card, domain, seed) ->
      let rng = Util.Prng.create seed in
      let r = random_edges rng "R" ("a", "b") card domain in
      let s = random_edges rng "S" ("b", "c") card domain in
      let t = random_edges rng "T" ("c", "a") card domain in
      Wcoj.count [ r; s; t ] = naive_triangles r s t)

let wcoj_matches_fjoin_on_acyclic =
  QCheck2.Test.make ~count:30 ~name:"wcoj = fjoin on acyclic queries"
    QCheck2.Gen.(triple (int_range 0 30) (int_range 1 6) int)
    (fun (card, domain, seed) ->
      let rng = Util.Prng.create seed in
      let rels = random_db rng (star_shape card domain) in
      Wcoj.count rels = Fjoin.count rels (VO.of_relations rels))

let test_wcoj_materialise_triangle () =
  let edges = [ (0, 1); (1, 2); (2, 0); (0, 2) ] in
  let mk name (a1, a2) =
    Relation.of_list name
      (Schema.make [ (a1, Value.TInt); (a2, Value.TInt) ])
      (List.map (fun (x, y) -> [| int x; int y |]) edges)
  in
  let r = mk "R" ("a", "b") and s = mk "S" ("b", "c") and t = mk "T" ("c", "a") in
  let join = Wcoj.materialise [ r; s; t ] in
  Alcotest.(check int) "materialised = counted" (Wcoj.count [ r; s; t ])
    (Relation.cardinality join);
  Alcotest.(check int) "triangle attrs" 3 (Schema.arity (Relation.schema join))

let test_wcoj_bag_semantics () =
  (* duplicate edges multiply *)
  let dup = [ [| int 1; int 2 |]; [| int 1; int 2 |] ] in
  let r = Relation.of_list "R" (Schema.make [ ("a", Value.TInt); ("b", Value.TInt) ]) dup in
  let s =
    Relation.of_list "S"
      (Schema.make [ ("b", Value.TInt); ("c", Value.TInt) ])
      [ [| int 2; int 3 |] ]
  in
  Alcotest.(check int) "2 x 1" 2 (Wcoj.count [ r; s ])

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "factorized"
    [
      ( "paper-example",
        [
          Alcotest.test_case "flat join has 12 tuples" `Quick test_flat_join_count;
          Alcotest.test_case "factorised COUNT = 12" `Quick test_factorised_count;
          Alcotest.test_case "COUNT over f-rep" `Quick test_factorised_count_via_frep;
          Alcotest.test_case "SUM(price) GROUP BY dish" `Quick test_sum_price_by_dish;
          Alcotest.test_case "SUM(price) = 36" `Quick test_sum_price_total;
          Alcotest.test_case "factorised smaller than flat" `Quick test_sizes;
          Alcotest.test_case "enumeration = flat join" `Quick
            test_enumeration_equals_flat;
          Alcotest.test_case "cache on/off agree" `Quick test_cache_matches_nocache;
        ] );
      ( "random-equivalence",
        [
          qcheck (equivalence_prop star_shape);
          qcheck (equivalence_prop chain_shape);
        ] );
      ("grouped-semiring", List.map qcheck grouped_semiring_axioms);
      ( "wcoj",
        [
          qcheck wcoj_triangle_count;
          qcheck wcoj_matches_fjoin_on_acyclic;
          Alcotest.test_case "materialise triangle join" `Quick
            test_wcoj_materialise_triangle;
          Alcotest.test_case "bag semantics" `Quick test_wcoj_bag_semantics;
        ] );
      ( "frep-extras",
        [
          Alcotest.test_case "to_relation flattens" `Quick test_frep_to_relation;
          Alcotest.test_case "min-plus semiring" `Quick test_min_plus_over_frep;
          Alcotest.test_case "unconstrained variable" `Quick
            test_unconstrained_variable_raises;
        ] );
    ]
