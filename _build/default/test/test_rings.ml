(* Tests for the (semi)ring layer: ring axioms as qcheck properties for every
   instance, and the covariance ring against direct recomputation (including
   the worked example of Figure 10). *)

module I = Rings.Instances
module Cov = Rings.Covariance
open Util

(* Generic axiom properties for a semiring with a generator. *)
let semiring_axioms (type a) name (module S : Rings.Sig.SEMIRING with type t = a)
    (gen : a QCheck2.Gen.t) =
  let open QCheck2 in
  [
    Test.make ~count:100 ~name:(name ^ ": + commutative") (Gen.pair gen gen)
      (fun (a, b) -> S.equal (S.add a b) (S.add b a));
    Test.make ~count:100 ~name:(name ^ ": + associative") (Gen.triple gen gen gen)
      (fun (a, b, c) -> S.equal (S.add (S.add a b) c) (S.add a (S.add b c)));
    Test.make ~count:100 ~name:(name ^ ": 0 neutral for +") gen (fun a ->
        S.equal (S.add S.zero a) a && S.equal (S.add a S.zero) a);
    Test.make ~count:100 ~name:(name ^ ": * associative") (Gen.triple gen gen gen)
      (fun (a, b, c) -> S.equal (S.mul (S.mul a b) c) (S.mul a (S.mul b c)));
    Test.make ~count:100 ~name:(name ^ ": 1 neutral for *") gen (fun a ->
        S.equal (S.mul S.one a) a && S.equal (S.mul a S.one) a);
    Test.make ~count:100 ~name:(name ^ ": left distributivity")
      (Gen.triple gen gen gen) (fun (a, b, c) ->
        S.equal (S.mul a (S.add b c)) (S.add (S.mul a b) (S.mul a c)));
    Test.make ~count:100 ~name:(name ^ ": right distributivity")
      (Gen.triple gen gen gen) (fun (a, b, c) ->
        S.equal (S.mul (S.add a b) c) (S.add (S.mul a c) (S.mul b c)));
  ]

let ring_axioms (type a) name (module R : Rings.Sig.RING with type t = a)
    (gen : a QCheck2.Gen.t) =
  QCheck2.Test.make ~count:100 ~name:(name ^ ": additive inverse") gen (fun a ->
      R.equal (R.add a (R.neg a)) R.zero)
  :: semiring_axioms name (module R) gen

let small_int_gen = QCheck2.Gen.int_range (-50) 50
let nat_gen = QCheck2.Gen.int_range 0 50
let bool_gen = QCheck2.Gen.bool

(* Small integral floats so float addition is exactly associative. *)
let float_gen = QCheck2.Gen.map float_of_int (QCheck2.Gen.int_range (-20) 20)

(* --- covariance ring --- *)

let dim = 3

module CovRing = Cov.Make (struct
  let n = dim
end)

let cov_gen =
  (* triples built from random tuples: closed under the ring operations used *)
  QCheck2.Gen.(
    let tuple = array_size (return dim) (map float_of_int (int_range (-5) 5)) in
    let base =
      oneof
        [
          map Cov.of_tuple tuple;
          map (fun (i, x) -> Cov.lift dim (abs i mod dim) (float_of_int x))
            (pair small_int nat_gen);
          return (Cov.zero dim);
          return (Cov.one dim);
        ]
    in
    map
      (fun (a, b) -> Cov.add a b)
      (pair base base))

(* the covariance triple computed naively from a list of feature tuples *)
let cov_of_rows rows =
  let acc = Cov.Acc.create dim in
  List.iter (fun r -> Cov.Acc.add_tuple acc r) rows;
  Cov.Acc.freeze acc

let test_of_tuple_matches_lift_product () =
  (* product of per-feature lifts = of_tuple *)
  let xs = [| 2.0; -3.0; 5.0 |] in
  let lifted =
    Array.to_list (Array.mapi (fun i x -> Cov.lift dim i x) xs)
    |> List.fold_left Cov.mul (Cov.one dim)
  in
  Alcotest.(check bool) "lift product = of_tuple" true
    (Cov.equal lifted (Cov.of_tuple xs))

let test_add_is_union () =
  (* adding triples of two datasets = triple of their union *)
  let rows1 = [ [| 1.0; 2.0; 3.0 |]; [| 0.0; 1.0; -1.0 |] ] in
  let rows2 = [ [| 4.0; 0.0; 2.0 |] ] in
  let got = Cov.add (cov_of_rows rows1) (cov_of_rows rows2) in
  Alcotest.(check bool) "union" true (Cov.equal got (cov_of_rows (rows1 @ rows2)))

let test_mul_is_cartesian_product () =
  (* The ring product of the triples of two datasets over DISJOINT feature
     sets equals the triple of their Cartesian product. Features 0 in set A;
     features 1,2 in set B (unused features are zero). *)
  let a_rows = [ [| 2.0; 0.0; 0.0 |]; [| 3.0; 0.0; 0.0 |] ] in
  let b_rows = [ [| 0.0; 1.0; 4.0 |]; [| 0.0; 5.0; 6.0 |]; [| 0.0; 7.0; 8.0 |] ] in
  let product_rows =
    List.concat_map
      (fun a -> List.map (fun b -> Array.mapi (fun i x -> x +. b.(i)) a) b_rows)
      a_rows
  in
  (* triples restricted to each side use lifts of only their own features *)
  let side rows feats =
    List.fold_left
      (fun acc r ->
        Cov.add acc
          (List.fold_left
             (fun t i -> Cov.mul t (Cov.lift dim i r.(i)))
             (Cov.one dim) feats))
      (Cov.zero dim) rows
  in
  let got = Cov.mul (side a_rows [ 0 ]) (side b_rows [ 1; 2 ]) in
  Alcotest.(check bool) "cartesian" true
    (Cov.equal got (cov_of_rows product_rows))

(* Figure 10: the factorised fragment for dish = burger.
   Items side: patty 6, bun 2, onion 2 -> (3, 10, 0)
   Orders side: (Monday, Elise), (Friday, Elise) -> (2, 0, 0)
   product -> (6, 20, 0); with the dish lift contributing price*dish terms. *)
let test_figure10_numbers () =
  (* 2-dimensional ring: feature 0 = price, feature 1 = f(dish) one-hot-ish *)
  let d = 2 in
  let lift_price x = Cov.lift d 0 x in
  let items = [ 6.0; 2.0; 2.0 ] in
  let items_triple =
    List.fold_left (fun acc p -> Cov.add acc (lift_price p)) (Cov.zero d) items
  in
  Alcotest.(check (float 1e-9)) "items count" 3.0 (Cov.count items_triple);
  Alcotest.(check (float 1e-9)) "items sum" 10.0 (Vec.get (Cov.sums items_triple) 0);
  let orders_triple = Cov.smul 2.0 (Cov.one d) in
  let burger_subtree = Cov.mul orders_triple items_triple in
  Alcotest.(check (float 1e-9)) "count 6" 6.0 (Cov.count burger_subtree);
  Alcotest.(check (float 1e-9)) "sum 20" 20.0 (Vec.get (Cov.sums burger_subtree) 0);
  (* multiply by the lift of f(burger) = 1 on feature 1 *)
  let with_dish = Cov.mul burger_subtree (Cov.lift d 1 1.0) in
  (* SUM(price * dish) entry (0,1) should be 20 * f(burger) = 20 *)
  Alcotest.(check (float 1e-9)) "price*dish = 20" 20.0
    (Mat.get (Cov.products with_dish) 0 1)

let test_moment_matrix_layout () =
  let t = cov_of_rows [ [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |] ] in
  let m = Cov.moment_matrix t in
  Alcotest.(check (float 1e-9)) "count slot" 2.0 (Mat.get m 0 0);
  Alcotest.(check (float 1e-9)) "sum x0" 5.0 (Mat.get m 0 1);
  Alcotest.(check (float 1e-9)) "x0*x1" (2.0 +. 20.0) (Mat.get m 1 2);
  Alcotest.(check bool) "symmetric" true (Mat.is_symmetric m)

let test_acc_matches_functional () =
  let rng = Prng.create 99 in
  let rows =
    List.init 50 (fun _ -> Array.init dim (fun _ -> Prng.float_range rng (-2.0) 2.0))
  in
  let functional =
    List.fold_left (fun acc r -> Cov.add acc (Cov.of_tuple r)) (Cov.zero dim) rows
  in
  Alcotest.(check bool) "acc = fold" true
    (Cov.equal ~eps:1e-6 functional (cov_of_rows rows))

(* ---- the dimension-agnostic payload used by F-IVM ---- *)
module PD = Fivm.Payload.Cov_dyn

let test_cov_dyn_symbolic_identities () =
  let e = `Elem (Cov.of_tuple [| 1.0; 2.0 |]) in
  Alcotest.(check bool) "0 + x = x" true (PD.equal (PD.add PD.zero e) e);
  Alcotest.(check bool) "1 * x = x" true (PD.equal (PD.mul PD.one e) e);
  Alcotest.(check bool) "0 * x = 0" true (PD.equal (PD.mul PD.zero e) PD.zero);
  Alcotest.(check bool) "x + (-x) = 0" true (PD.equal (PD.add e (PD.neg e)) PD.zero);
  Alcotest.(check bool) "smul 3" true
    (PD.equal (PD.smul 3 e) (PD.add e (PD.add e e)))

let test_cov_dyn_rejects_dimensionless () =
  Alcotest.(check bool) "One+One rejected" true
    (match PD.add PD.one PD.one with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "neg One rejected" true
    (match PD.neg PD.one with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_cov_elem () =
  Alcotest.(check bool) "zero" true
    (Cov.equal (Fivm.Payload.cov_elem 2 `Zero) (Cov.zero 2));
  Alcotest.(check bool) "one" true
    (Cov.equal (Fivm.Payload.cov_elem 2 `One) (Cov.one 2))

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "rings"
    [
      ("bool-semiring", List.map qcheck (semiring_axioms "bool" (module I.Bool) bool_gen));
      ("nat-semiring", List.map qcheck (semiring_axioms "nat" (module I.Nat) nat_gen));
      ("Z-ring", List.map qcheck (ring_axioms "Z" (module I.Z) small_int_gen));
      ("R-ring", List.map qcheck (ring_axioms "R" (module I.R) float_gen));
      ( "min-plus",
        List.map qcheck (semiring_axioms "min-plus" (module I.Min_plus) float_gen) );
      ( "max-plus",
        List.map qcheck (semiring_axioms "max-plus" (module I.Max_plus) float_gen) );
      ( "covariance-ring-axioms",
        List.map qcheck (ring_axioms "cov" (module CovRing) cov_gen) );
      ( "cov-dyn-payload",
        [
          Alcotest.test_case "symbolic identities" `Quick test_cov_dyn_symbolic_identities;
          Alcotest.test_case "dimensionless rejected" `Quick
            test_cov_dyn_rejects_dimensionless;
          Alcotest.test_case "cov_elem" `Quick test_cov_elem;
        ] );
      ( "covariance-ring-semantics",
        [
          Alcotest.test_case "lift product = of_tuple" `Quick
            test_of_tuple_matches_lift_product;
          Alcotest.test_case "add = dataset union" `Quick test_add_is_union;
          Alcotest.test_case "mul = cartesian product" `Quick
            test_mul_is_cartesian_product;
          Alcotest.test_case "Figure 10 numbers" `Quick test_figure10_numbers;
          Alcotest.test_case "moment matrix layout" `Quick test_moment_matrix_layout;
          Alcotest.test_case "accumulator = functional fold" `Quick
            test_acc_matches_functional;
        ] );
    ]
