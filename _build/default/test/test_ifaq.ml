(* Tests for IFAQ: the interpreter's semantics, each rewrite's equivalence
   (on the Section 5.3 gradient-descent program over random databases), and
   the operation-count reduction along the pipeline. *)

open Ifaq
open Expr

let vnum = function
  | Interp.VNum x -> x
  | v -> Alcotest.failf "expected number, got %s" (Format.asprintf "%a" Interp.pp_value v)

(* normalise a parameter value (dict over feature symbols OR record) *)
let params_of_value (v : Interp.value) : (string * float) list =
  match v with
  | Interp.VDict entries ->
      List.sort compare
        (List.map
           (fun (k, v) ->
             match k with
             | Interp.VSym s -> (s, vnum v)
             | _ -> Alcotest.fail "expected symbolic key")
           entries)
  | Interp.VRec fields -> List.sort compare (List.map (fun (n, v) -> (n, vnum v)) fields)
  | _ -> Alcotest.fail "expected parameters"

let params_close a b =
  List.length a = List.length b
  && List.for_all2
       (fun (n1, x) (n2, y) ->
         n1 = n2 && Float.abs (x -. y) <= 1e-7 *. (1.0 +. Float.abs x))
       a b

(* ---- interpreter basics ---- *)

let test_arith_and_let () =
  let e = Let ("x", Num 3.0, Add (Var "x", Mul (Var "x", Num 2.0))) in
  let v, _ = Interp.run e in
  Alcotest.(check (float 1e-12)) "3 + 3*2" 9.0 (vnum v)

let test_sum_over_set () =
  (* sum over a static set of the guard [f = 'b] is 1 *)
  let e = Sum ("f", Set [ "a"; "b"; "c" ], Eq (Var "f", Sym "b")) in
  let v, _ = Interp.run e in
  Alcotest.(check (float 1e-12)) "one match" 1.0 (vnum v)

let test_dict_merge_drops_zero () =
  let e =
    Add (Sing (Num 1.0, Num 2.0), Add (Sing (Num 1.0, Num (-2.0)), Sing (Num 5.0, Num 3.0)))
  in
  match fst (Interp.run e) with
  | Interp.VDict [ (Interp.VNum 5.0, Interp.VNum 3.0) ] -> ()
  | v -> Alcotest.failf "unexpected %s" (Format.asprintf "%a" Interp.pp_value v)

let test_lookup_default_zero () =
  let e = Lookup (Sing (Num 1.0, Num 2.0), Num 9.0) in
  Alcotest.(check (float 1e-12)) "missing key" 0.0 (vnum (fst (Interp.run e)))

let test_join_expr_counts () =
  let relations = Gd_example.relations ~n_s:20 ~n_keys:4 ~seed:3 () in
  let q, _ = Interp.run ~relations Gd_example.join_expr in
  (* every S tuple joins exactly once (R and I are keyed) *)
  match q with
  | Interp.VDict entries ->
      let total =
        List.fold_left (fun acc (_, v) -> acc +. vnum v) 0.0 entries
      in
      Alcotest.(check (float 1e-9)) "20 join tuples" 20.0 total
  | _ -> Alcotest.fail "expected dict"

(* ---- rewrite rules in isolation ---- *)

let test_push_into_sums () =
  let e = Mul (Var "a", Sum ("x", Rel "S", Var "x")) in
  match Rewrite.push_into_sums e with
  | Sum ("x", Rel "S", Mul (Var "a", Var "x")) -> ()
  | e' -> Alcotest.failf "unexpected %s" (to_string e')

let test_factor_out () =
  let e = Sum ("x", Rel "S", Mul (Var "a", Mul (Var "x", Var "b"))) in
  match Rewrite.factor_out e with
  | Mul (Mul (Var "a", Var "b"), Sum ("x", Rel "S", Var "x")) -> ()
  | e' -> Alcotest.failf "unexpected %s" (to_string e')

let test_swap_loops () =
  let e = Sum ("x", Var "Q", Sum ("f", Set [ "a" ], Var "f")) in
  match Rewrite.swap_loops e with
  | Sum ("f", Set [ "a" ], Sum ("x", Var "Q", Var "f")) -> ()
  | e' -> Alcotest.failf "unexpected %s" (to_string e')

let test_unroll () =
  let e = Sum ("f", Set [ "a"; "b" ], Lookup (Var "d", Var "f")) in
  match Rewrite.unroll_static e with
  | Add (Lookup (Var "d", Sym "a"), Lookup (Var "d", Sym "b")) -> ()
  | e' -> Alcotest.failf "unexpected %s" (to_string e')

let test_static_fields () =
  let e = Lookup (Var "d", Sym "a") in
  match Rewrite.static_field_access e with
  | Field (Var "d", "a") -> ()
  | e' -> Alcotest.failf "unexpected %s" (to_string e')

let test_memoise_hoists_out_of_loop () =
  let stage1 = Rewrite.high_level Gd_example.original in
  let stage2 = Rewrite.memoise_and_hoist stage1 in
  (* a Let must now sit between the Q binding and the Iter *)
  match stage2 with
  | Let ("Q", _, Let (_, Lam _, Iter _)) -> ()
  | e -> Alcotest.failf "no hoisted memo:\n%s" (to_string e)

(* ---- whole-pipeline equivalence and cost ---- *)

let stage_equivalence =
  QCheck2.Test.make ~count:12 ~name:"all pipeline stages compute equal parameters"
    QCheck2.Gen.(pair (int_range 5 40) int)
    (fun (n_s, seed) ->
      let relations = Gd_example.relations ~n_s ~n_keys:5 ~seed () in
      let stages = Gd_example.all_stages () in
      let reference =
        params_of_value (fst (Interp.run ~relations (snd (List.hd stages))))
      in
      List.for_all
        (fun (_, program) ->
          let v, _ = Interp.run ~relations program in
          params_close reference (params_of_value v))
        stages)

let test_ops_drop () =
  let relations = Gd_example.relations ~n_s:60 ~n_keys:6 ~seed:9 () in
  let stages = Gd_example.all_stages () in
  let counts =
    List.map
      (fun (name, program) ->
        let _, c = Interp.run ~relations program in
        (name, Interp.total c))
      stages
  in
  let original = List.assoc "original" counts in
  let final = snd (List.nth counts (List.length counts - 1)) in
  Alcotest.(check bool)
    (Printf.sprintf "final ops %d < 20%% of original %d" final original)
    true
    (final * 5 < original);
  (* memoisation must beat the stage before it *)
  let by_index i = snd (List.nth counts i) in
  Alcotest.(check bool) "memoisation reduces ops" true (by_index 2 < by_index 1)

(* ---- interpreter value algebra ---- *)

let value_gen =
  QCheck2.Gen.(
    let num = map (fun n -> Interp.VNum (float_of_int n)) (int_range (-5) 5) in
    let record =
      map
        (fun xs ->
          Interp.VRec
            (List.sort compare
               (List.mapi (fun i x -> (Printf.sprintf "f%d" i, Interp.VNum (float_of_int x))) xs)))
        (list_size (return 3) (int_range (-5) 5))
    in
    let dict base =
      map
        (fun entries ->
          List.fold_left
            (fun acc (k, v) ->
              Interp.value_add (Interp.fresh_counters ()) acc
                (Interp.VDict [ (Interp.VNum (float_of_int k), v) ]))
            (Interp.VDict []) entries)
        (list_size (int_range 0 4) (pair (int_range 0 5) base))
    in
    oneof [ num; record; dict num; dict record ])

let value_add_commutative_associative =
  QCheck2.Test.make ~count:150 ~name:"value_add commutative + associative (same shape)"
    QCheck2.Gen.(triple value_gen value_gen value_gen)
    (fun (a, b, c) ->
      let shape = function
        | Interp.VNum _ -> 0
        | Interp.VSym _ -> 1
        | Interp.VRec _ -> 2
        | Interp.VDict _ -> 3
      in
      let cnt = Interp.fresh_counters () in
      let inner_shape v = match v with
        | Interp.VDict ((_, x) :: _) -> 10 + shape x
        | v -> shape v
      in
      if inner_shape a <> inner_shape b || inner_shape b <> inner_shape c then true
      else
        try
          Interp.value_compare (Interp.value_add cnt a b) (Interp.value_add cnt b a) = 0
          && Interp.value_compare
               (Interp.value_add cnt (Interp.value_add cnt a b) c)
               (Interp.value_add cnt a (Interp.value_add cnt b c))
             = 0
        with Interp.Type_error _ -> true)

let test_scaling_distributes () =
  let c = Interp.fresh_counters () in
  let d =
    Interp.VDict
      [ (Interp.VNum 1.0, Interp.VNum 2.0); (Interp.VNum 2.0, Interp.VNum 5.0) ]
  in
  let lhs = Interp.value_mul c (Interp.VNum 3.0) d in
  let rhs =
    Interp.value_add c
      (Interp.value_mul c (Interp.VNum 1.0) d)
      (Interp.value_mul c (Interp.VNum 2.0) d)
  in
  Alcotest.(check bool) "3*d = 1*d + 2*d" true (Interp.value_compare lhs rhs = 0)

let test_value_of_relation () =
  let open Relational in
  let rel =
    Relation.of_list "R"
      (Schema.make [ ("a", Value.TInt); ("b", Value.TFloat) ])
      [ [| Value.Int 1; Value.Float 2.0 |]; [| Value.Int 1; Value.Float 2.0 |] ]
  in
  match Interp.value_of_relation rel with
  | Interp.VDict [ (_, Interp.VNum 2.0) ] -> () (* duplicate merged to mult 2 *)
  | v -> Alcotest.failf "unexpected %s" (Format.asprintf "%a" Interp.pp_value v)

(* ---- dictionary layouts (Section 5.3 data layout) ---- *)

let layouts_agree =
  QCheck2.Test.make ~count:80 ~name:"dictionary layouts compute equal results"
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 60) (pair (int_range 0 20) (int_range (-5) 5)))
        (list_size (int_range 0 30) (int_range 0 25)))
    (fun (entries, probes) ->
      let entries =
        Array.of_list (List.map (fun (k, v) -> (k, float_of_int v)) entries)
      in
      let probes = Array.of_list probes in
      let results =
        List.map
          (fun d ->
            let checksum, _, _ = Dict_layout.workload d ~entries ~probes in
            checksum)
          Dict_layout.all
      in
      match results with
      | r :: rest -> List.for_all (fun x -> Float.abs (x -. r) < 1e-9) rest
      | [] -> true)

let test_layout_sizes_agree () =
  let entries = [| (1, 2.0); (1, 3.0); (5, 1.0); (2, 0.5) |] in
  List.iter
    (fun (module D : Dict_layout.DICT) ->
      Alcotest.(check int)
        (Dict_layout.layout_name D.layout ^ " size")
        3
        (D.size (D.build entries)))
    Dict_layout.all

let test_sorted_scan_order () =
  let module D = Dict_layout.Sorted_dict in
  let d = D.build [| (5, 1.0); (1, 2.0); (3, 4.0) |] in
  let keys = List.rev (D.fold_ascending (fun k _ acc -> k :: acc) d []) in
  Alcotest.(check (list int)) "ascending" [ 1; 3; 5 ] keys

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "ifaq"
    [
      ( "interpreter",
        [
          Alcotest.test_case "arith + let" `Quick test_arith_and_let;
          Alcotest.test_case "sum over set" `Quick test_sum_over_set;
          Alcotest.test_case "dict merge drops zeros" `Quick test_dict_merge_drops_zero;
          Alcotest.test_case "lookup default 0" `Quick test_lookup_default_zero;
          Alcotest.test_case "join cardinality" `Quick test_join_expr_counts;
        ] );
      ( "rewrites",
        [
          Alcotest.test_case "push into sums" `Quick test_push_into_sums;
          Alcotest.test_case "factor out" `Quick test_factor_out;
          Alcotest.test_case "swap loops" `Quick test_swap_loops;
          Alcotest.test_case "unroll static" `Quick test_unroll;
          Alcotest.test_case "static fields" `Quick test_static_fields;
          Alcotest.test_case "memoise hoists out of loop" `Quick
            test_memoise_hoists_out_of_loop;
        ] );
      ( "value-algebra",
        [
          qcheck value_add_commutative_associative;
          Alcotest.test_case "scaling distributes" `Quick test_scaling_distributes;
          Alcotest.test_case "relation to dict merges duplicates" `Quick
            test_value_of_relation;
        ] );
      ( "dict-layouts",
        [
          qcheck layouts_agree;
          Alcotest.test_case "sizes agree" `Quick test_layout_sizes_agree;
          Alcotest.test_case "sorted scan order" `Quick test_sorted_scan_order;
        ] );
      ( "pipeline",
        [ qcheck stage_equivalence; Alcotest.test_case "op counts drop" `Quick test_ops_drop ] );
    ]
