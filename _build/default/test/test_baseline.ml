(* Tests for the baselines: the unshared engines must agree with each other,
   with naive evaluation and with LMFAO; the AC/DC ladder stages must all
   compute the same covariance triple; the agnostic pipeline must learn. *)

open Relational
module Spec = Aggregates.Spec
module Batch = Aggregates.Batch
module Cov = Rings.Covariance

let db_small () = Datagen.Retailer.generate ~scale:0.01 ~seed:5 ()

(* relative comparison of covariance triples via their moment matrices *)
let cov_close a b =
  let ma = Cov.moment_matrix a and mb = Cov.moment_matrix b in
  let ok = ref (Util.Mat.rows ma = Util.Mat.rows mb) in
  if !ok then
    for i = 0 to Util.Mat.rows ma - 1 do
      for j = 0 to Util.Mat.cols ma - 1 do
        let x = Util.Mat.get ma i j and y = Util.Mat.get mb i j in
        if Float.abs (x -. y) > 1e-6 *. (1.0 +. Float.abs x +. Float.abs y) then
          ok := false
      done
    done;
  !ok

let norm r = List.sort compare (List.filter (fun (_, v) -> Float.abs v > 1e-12) r)

let results_agree a b =
  List.for_all
    (fun (id, ra) ->
      let rb = List.assoc id b in
      Spec.result_equal (norm ra) (norm rb)
      || (norm ra = [] && norm rb = []))
    a

let test_dbx_monet_lmfao_agree () =
  let db = db_small () in
  let features = Datagen.Retailer.features in
  let batch = Batch.covariance features in
  let join = Database.materialise_join db in
  let dbx = Baseline.Unshared.dbx join batch in
  let monet = Baseline.Unshared.monet join batch in
  let lmfao = (Lmfao.Engine.eval db batch).Lmfao.Engine.keyed in
  Alcotest.(check bool) "dbx = monet" true (results_agree dbx monet);
  Alcotest.(check bool) "dbx = lmfao" true (results_agree dbx lmfao)

let test_decision_batch_agree () =
  let db = db_small () in
  let features =
    Aggregates.Feature.make ~response:"inventoryunits" ~thresholds_per_feature:4
      ~continuous:[ "prize"; "maxtemp" ] ~categorical:[ "category"; "rain" ] ()
  in
  let batch = Batch.decision_node ~db features in
  let join = Database.materialise_join db in
  let dbx = Baseline.Unshared.dbx join batch in
  let monet = Baseline.Unshared.monet join batch in
  let lmfao = (Lmfao.Engine.eval db batch).Lmfao.Engine.keyed in
  Alcotest.(check bool) "dbx = monet (filters)" true (results_agree dbx monet);
  Alcotest.(check bool) "dbx = lmfao (filters)" true (results_agree dbx lmfao)

let test_acdc_stages_agree () =
  let db = db_small () in
  let features = Datagen.Retailer.ivm_features in
  let reference = Baseline.Acdc.stage0_interpreted db ~features in
  List.iter
    (fun (name, stage) ->
      Alcotest.(check bool)
        (name ^ " = baseline")
        true
        (cov_close (stage db ~features) reference))
    Baseline.Acdc.stages

let test_acdc_matches_flat () =
  let db = db_small () in
  let features = Datagen.Retailer.ivm_features in
  let join = Database.materialise_join db in
  let schema = Relation.schema join in
  let positions = List.map (Schema.position schema) features in
  let acc = Cov.Acc.create (List.length features) in
  Relation.iter
    (fun t ->
      Cov.Acc.add_tuple acc
        (Array.of_list (List.map (fun p -> Value.to_float t.(p)) positions)))
    join;
  let flat = Cov.Acc.freeze acc in
  Alcotest.(check bool) "ring pass = flat covariance" true
    (cov_close (Baseline.Acdc.stage2_shared db ~features) flat)

let test_one_hot_shape () =
  let db = db_small () in
  let join = Database.materialise_join db in
  let m = Baseline.One_hot.encode join Datagen.Retailer.features in
  Alcotest.(check int) "row per join tuple" (Relation.cardinality join)
    (Baseline.One_hot.rows m);
  Alcotest.(check bool) "one-hot widens the matrix" true
    (Baseline.One_hot.cols m
    > 1 + List.length Datagen.Retailer.features.continuous);
  (* every one-hot row block sums to the number of categorical features *)
  let n_cat = List.length Datagen.Retailer.features.categorical in
  let n_cont = List.length Datagen.Retailer.features.continuous in
  Array.iter
    (fun row ->
      let ones = ref 0 in
      Array.iteri (fun j v -> if j > n_cont && v = 1.0 then incr ones) row;
      Alcotest.(check int) "indicators per row" n_cat !ones)
    (Array.sub m.x 0 (Stdlib.min 20 (Baseline.One_hot.rows m)))

let test_sgd_learns_plane () =
  (* y = 3 + 2*x: SGD should drive RMSE near zero *)
  let rng = Util.Prng.create 12 in
  let n = 2000 in
  let x =
    Array.init n (fun _ ->
        let v = Util.Prng.float_range rng (-5.0) 5.0 in
        [| 1.0; v |])
  in
  let y = Array.map (fun row -> 3.0 +. (2.0 *. row.(1))) x in
  let m = { Baseline.One_hot.columns = [| "intercept"; "x" |]; x; y } in
  let model =
    Baseline.Sgd.train
      ~params:{ Baseline.Sgd.default_params with epochs = 60; learning_rate = 0.05 }
      m
  in
  Alcotest.(check bool) "rmse < 0.1" true (Baseline.Sgd.rmse model m < 0.1)

let test_agnostic_pipeline_runs () =
  let db = Datagen.Retailer.generate ~scale:0.005 ~seed:3 () in
  let report = Baseline.Agnostic.run db Datagen.Retailer.features in
  Alcotest.(check bool) "join materialised" true (report.join_cardinality > 0);
  Alcotest.(check bool) "csv exported" true (report.join_csv_bytes > 0);
  Alcotest.(check bool) "finite rmse" true (Float.is_finite report.rmse);
  Alcotest.(check bool) "stages timed" true
    (Baseline.Agnostic.total_seconds report > 0.0)

let () =
  Alcotest.run "baseline"
    [
      ( "unshared",
        [
          Alcotest.test_case "dbx/monet/lmfao agree (covariance)" `Quick
            test_dbx_monet_lmfao_agree;
          Alcotest.test_case "dbx/monet/lmfao agree (decision)" `Quick
            test_decision_batch_agree;
        ] );
      ( "acdc-ladder",
        [
          Alcotest.test_case "all stages agree" `Quick test_acdc_stages_agree;
          Alcotest.test_case "ring pass = flat covariance" `Quick
            test_acdc_matches_flat;
        ] );
      ( "agnostic-pipeline",
        [
          Alcotest.test_case "one-hot shape" `Quick test_one_hot_shape;
          Alcotest.test_case "sgd learns a plane" `Quick test_sgd_learns_plane;
          Alcotest.test_case "pipeline end to end" `Quick test_agnostic_pipeline_runs;
        ] );
    ]
