(* CART regression tree over relational data (Section 2.2): every split
   decision is answered by ONE aggregate batch at the tree node — variance
   triples under threshold and category filters — evaluated by LMFAO over
   the base relations. The data matrix is never materialised during
   training.

   Run with:  dune exec examples/decision_tree.exe *)

open Relational

let () =
  let db = Datagen.Retailer.generate ~scale:0.05 ~seed:21 () in
  (* a focused feature set keeps the printed tree readable *)
  let features =
    Aggregates.Feature.make ~response:"inventoryunits" ~thresholds_per_feature:12
      ~continuous:[ "prize"; "tot_area_sq_ft"; "avghhi"; "maxtemp" ]
      ~categorical:[ "category"; "rain" ] ()
  in
  Printf.printf "training a depth-4 regression tree over:\n%s\n"
    (Format.asprintf "%a" Database.pp db);

  let tree, seconds =
    Util.Timing.time (fun () ->
        Ml.Decision_tree.train
          ~params:{ Ml.Decision_tree.default_params with max_depth = 4 }
          db features)
  in
  Printf.printf "trained in %s (%d nodes, depth %d)\n\n"
    (Util.Timing.to_string seconds)
    (Ml.Decision_tree.size tree)
    (Ml.Decision_tree.depth tree);
  Format.printf "%a@." (Ml.Decision_tree.pp ?indent:None) tree;

  (* evaluation against the materialised join (only for reporting) *)
  let join = Database.materialise_join db in
  let rmse = Ml.Decision_tree.rmse_on tree join ~response:"inventoryunits" in
  (* baseline: constant predictor *)
  let schema = Relation.schema join in
  let pos = Schema.position schema "inventoryunits" in
  let n = float_of_int (Relation.cardinality join) in
  let mean = Relation.fold (fun acc t -> acc +. Value.to_float t.(pos)) 0.0 join /. n in
  let std =
    sqrt
      (Relation.fold
         (fun acc t -> acc +. ((Value.to_float t.(pos) -. mean) ** 2.0))
         0.0 join
      /. n)
  in
  Printf.printf "\ntree RMSE: %.2f   constant-predictor RMSE: %.2f   R^2: %.3f\n" rmse
    std
    (1.0 -. (rmse *. rmse /. (std *. std)));

  (* predict for one row of the join *)
  let row = Relation.get join 0 in
  let get a = row.(Schema.position schema a) in
  Printf.printf "sample prediction: %.1f (actual %.1f)\n"
    (Ml.Decision_tree.predict tree get)
    (Value.to_float (get "inventoryunits"))
