(* IFAQ (Section 5.3, Figure 11): the gradient-descent program over the join
   S |><| R |><| I taken through every transformation stage. Each stage is
   printed, evaluated, and checked to produce the same parameters; the
   operation counters show what each transformation buys.

   Run with:  dune exec examples/ifaq_stages.exe *)

let params_of_value (v : Ifaq.Interp.value) =
  match v with
  | Ifaq.Interp.VDict entries ->
      List.filter_map
        (function
          | Ifaq.Interp.VSym s, Ifaq.Interp.VNum x -> Some (s, x)
          | _ -> None)
        entries
  | Ifaq.Interp.VRec fields ->
      List.filter_map
        (function n, Ifaq.Interp.VNum x -> Some (n, x) | _ -> None)
        fields
  | _ -> []

let () =
  let relations = Ifaq.Gd_example.relations ~n_s:120 ~n_keys:8 ~seed:13 () in
  let stages = Ifaq.Gd_example.all_stages () in
  let reference = ref None in
  List.iteri
    (fun i (name, program) ->
      Printf.printf "%s\nstage %d: %s\n%s\n" (String.make 74 '=') i name
        (String.make 74 '=');
      (* print the program for the compact stages; the unrolled ones get a
         size summary to keep the output readable *)
      if Ifaq.Expr.size program < 250 then
        Format.printf "%a@." Ifaq.Expr.pp program
      else Printf.printf "(program with %d AST nodes)\n" (Ifaq.Expr.size program);
      let (v, c), seconds =
        Util.Timing.time (fun () -> Ifaq.Interp.run ~relations program)
      in
      let params = List.sort compare (params_of_value v) in
      (match !reference with
      | None -> reference := Some params
      | Some r ->
          let close =
            List.for_all2
              (fun (n1, x) (n2, y) -> n1 = n2 && Float.abs (x -. y) < 1e-7)
              r params
          in
          Printf.printf "equivalent to stage 0: %b\n" close);
      Printf.printf "parameters: %s\n"
        (String.concat ", " (List.map (fun (n, x) -> Printf.sprintf "%s=%.6f" n x) params));
      Printf.printf "cost: %d arith, %d dict ops, %d loop steps (%s)\n\n"
        c.Ifaq.Interp.arith c.Ifaq.Interp.dict_ops c.Ifaq.Interp.iterations
        (Util.Timing.to_string seconds))
    stages
