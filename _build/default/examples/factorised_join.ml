(* The paper's Section 5.1 / 5.2 worked example (Figures 7-10): Orders,
   Dish, Items; the factorised join; COUNT and SUM aggregates evaluated in
   one pass with different semirings; the covariance-ring triples.

   Run with:  dune exec examples/factorised_join.exe *)

open Relational
module VO = Factorized.Var_order
module Fjoin = Factorized.Fjoin
module Frep = Factorized.Frep
module Fagg = Factorized.Faggregate
module Cov = Rings.Covariance

let str s = Value.Str s
let flt x = Value.Float x

let () =
  (* Figure 7: the example database *)
  let orders =
    Relation.of_list "Orders"
      (Schema.make [ ("customer", TStr); ("day", TStr); ("dish", TStr) ])
      [
        [| str "Elise"; str "Monday"; str "burger" |];
        [| str "Elise"; str "Friday"; str "burger" |];
        [| str "Steve"; str "Friday"; str "hotdog" |];
        [| str "Joe"; str "Friday"; str "hotdog" |];
      ]
  in
  let dish =
    Relation.of_list "Dish"
      (Schema.make [ ("dish", TStr); ("item", TStr) ])
      [
        [| str "burger"; str "patty" |]; [| str "burger"; str "onion" |];
        [| str "burger"; str "bun" |]; [| str "hotdog"; str "bun" |];
        [| str "hotdog"; str "onion" |]; [| str "hotdog"; str "sausage" |];
      ]
  in
  let items =
    Relation.of_list "Items"
      (Schema.make [ ("item", TStr); ("price", TFloat) ])
      [
        [| str "patty"; flt 6.0 |]; [| str "onion"; flt 2.0 |];
        [| str "bun"; flt 2.0 |]; [| str "sausage"; flt 4.0 |];
      ]
  in
  let rels = [ orders; dish; items ] in

  (* the flat join (Figure 7, right) *)
  let join = Ops.natural_join_all rels in
  Printf.printf "flat join: %d tuples x %d attributes = %d values\n"
    (Relation.cardinality join)
    (Schema.arity (Relation.schema join))
    (Relation.value_count join);

  (* Figure 8: variable order and factorised join *)
  let order = VO.of_relations rels in
  Format.printf "\nvariable order (vars adorned with their keys):@.%a@." VO.pp order;
  let frep = Fjoin.factorize rels order in
  Format.printf "\nfactorised join:@.%a@." Frep.pp frep;
  Printf.printf "\nfactorised size: %d values (flat: %d)\n"
    (Frep.value_count frep) (Relation.value_count join);

  (* Figure 9 left: COUNT by mapping every value to 1 in the nat semiring *)
  Printf.printf "\nCOUNT over the f-rep (nat semiring):  %d\n" (Fagg.count frep);

  (* Figure 9 right: SUM(price) GROUP BY dish *)
  Printf.printf "SUM(price) GROUP BY dish:\n";
  List.iter
    (fun (key, v) ->
      Printf.printf "  %s -> %g\n"
        (String.concat ","
           (List.map (fun (a, x) -> a ^ "=" ^ Value.to_string x) key))
        v)
    (Fagg.sum_grouped ~group_by:[ "dish" ] ~vars:[ "price" ] frep);

  (* Figure 10: the covariance ring evaluates SUM(1), SUM(price) and
     SUM(price * price) together, sharing counts into sums into products *)
  let lift var v =
    if var = "price" then `Elem (Cov.lift 1 0 (Value.to_float v))
    else `Elem (Cov.one 1)
  in
  let triple =
    Fagg.eval (module Fivm.Payload.Cov_dyn) ~lift frep
  in
  let triple = Fivm.Payload.cov_elem 1 triple in
  Printf.printf
    "\ncovariance-ring triple over the f-rep:\n  count = %g, SUM(price) = %g, SUM(price^2) = %g\n"
    (Cov.count triple)
    (Util.Vec.get (Cov.sums triple) 0)
    (Util.Mat.get (Cov.products triple) 0 0)
