(* Keeping models fresh (Section 1.5 and Figure 4 right): stream inserts
   into an initially empty retailer database while F-IVM maintains the
   covariance matrix; after every bulk of updates the regression model is
   refreshed from the maintained aggregates in milliseconds.

   Run with:  dune exec examples/incremental.exe *)

open Util
module M = Fivm.Maintainer
module Cov = Rings.Covariance

(* refresh: solve the normal equations on the maintained moment matrix *)
let refresh_model cov ~dim ~response_index =
  if Cov.count cov < 10.0 then None
  else begin
    let moment = Cov.moment_matrix cov in
    let keep =
      Array.of_list
        (List.filter (fun k -> k <> response_index + 1) (List.init (dim + 1) Fun.id))
    in
    let n = Cov.count cov in
    let a =
      Mat.init (Array.length keep) (Array.length keep) (fun r c ->
          (Mat.get moment keep.(r) keep.(c) /. n) +. if r = c then 1e-3 else 0.0)
    in
    let b = Array.map (fun r -> Mat.get moment r (response_index + 1) /. n) keep in
    Some (Mat.solve_spd a b)
  end

let () =
  let db = Datagen.Retailer.generate ~scale:0.08 ~seed:5 () in
  let features = Datagen.Retailer.ivm_features in
  let dim = List.length features in
  let stream = Array.of_list (Datagen.Stream_gen.inserts_of_database db) in
  Printf.printf "streaming %d inserts; maintaining %d covariance aggregates\n"
    (Array.length stream)
    ((dim + 1) * (dim + 2) / 2);

  let m = M.create M.F_ivm db ~features in
  let bulk = 2000 in
  let response_index = 0 (* inventoryunits is first in ivm_features *) in
  Printf.printf "%10s %16s %12s %12s %14s\n" "inserts" "maintain (bulk)" "refresh"
    "join count" "theta[prize]";
  let bulk_time = ref 0.0 in
  Array.iteri
    (fun i u ->
      let t0 = Timing.now () in
      M.apply m u;
      bulk_time := !bulk_time +. (Timing.now () -. t0);
      if (i + 1) mod bulk = 0 || i + 1 = Array.length stream then begin
        let cov = M.covariance m in
        let theta, refresh_seconds =
          Timing.time (fun () -> refresh_model cov ~dim ~response_index)
        in
        Printf.printf "%10d %16s %12s %12.0f %14s\n" (i + 1)
          (Timing.to_string !bulk_time)
          (Timing.to_string refresh_seconds)
          (Cov.count cov)
          (match theta with
          | Some t when Array.length t > 1 -> Printf.sprintf "%+.4f" t.(1)
          | _ -> "--");
        bulk_time := 0.0
      end)
    stream;
  (* sanity: the maintained state equals a from-scratch recomputation *)
  let drift =
    if Cov.equal_rel ~eps:1e-6 (M.covariance m) (M.recompute m) then "none"
    else "DRIFT DETECTED"
  in
  Printf.printf
    "\nfinal maintained state vs from-scratch recomputation: %s\n\
     each refresh is a small solve on the maintained aggregates — no data\n\
     matrix is ever rebuilt.\n"
    drift
