(* Cyclic queries: the machinery behind the paper's Section 3.2 — the
   triangle pattern evaluated by the worst-case optimal join, maintained
   incrementally under edge updates, and fed through the aggregate front end
   via the footnote-4 bag materialisation.

   Run with:  dune exec examples/graph_patterns.exe *)

open Relational

let () =
  (* a random directed graph as three edge relations R(a,b), S(b,c), T(c,a) *)
  let rng = Util.Prng.create 27 in
  let n_edges = 5_000 and n_vertices = 120 in
  let mk name (a1, a2) =
    let r = Relation.create name (Schema.make [ (a1, Value.TInt); (a2, Value.TInt) ]) in
    for _ = 1 to n_edges do
      Relation.append r
        [| Value.Int (Util.Prng.int rng n_vertices); Value.Int (Util.Prng.int rng n_vertices) |]
    done;
    r
  in
  let r = mk "R" ("a", "b") and s = mk "S" ("b", "c") and t = mk "T" ("c", "a") in

  (* GYO correctly refuses a join tree: the triangle is cyclic *)
  (match Join_tree.build [ r; s; t ] with
  | exception Join_tree.Cyclic -> Printf.printf "GYO: the triangle query is cyclic, as expected\n"
  | _ -> assert false);

  (* 1. worst-case optimal count *)
  let count, seconds =
    Util.Timing.time (fun () -> Factorized.Wcoj.count [ r; s; t ])
  in
  Printf.printf "WCOJ triangle count over 3 x %d edges: %d (%s)\n" n_edges count
    (Util.Timing.to_string seconds);

  (* 2. the binary-join plan pays for its intermediate *)
  let (intermediate, binary_count), seconds =
    Util.Timing.time (fun () ->
        let rs = Ops.natural_join r s in
        (Relation.cardinality rs, Relation.cardinality (Ops.natural_join rs t)))
  in
  Printf.printf "binary plan: same count %d, but a %d-row intermediate (%s)\n"
    binary_count intermediate
    (Util.Timing.to_string seconds);

  (* 3. aggregates over the cyclic join through the bag-materialising
        fallback (paper Section 4, footnote) *)
  let db = Database.create "triangle" [ r; s; t ] in
  let batch =
    {
      Aggregates.Batch.name = "tri";
      aggregates =
        [
          Aggregates.Spec.count ~id:"count";
          Aggregates.Spec.make ~id:"per_a" ~terms:[] ~group_by:[ "a" ] ();
        ];
    }
  in
  let results =
    (Lmfao.Engine.eval ~on_cyclic:`Materialize db batch).Lmfao.Engine.keyed
  in
  Printf.printf "eval (cyclic fallback): COUNT = %g; %d distinct 'a' groups\n"
    (Aggregates.Spec.scalar_result (List.assoc "count" results))
    (List.length (List.assoc "per_a" results));

  (* 4. maintenance under a stream of edge updates *)
  let g = Fivm.Triangle.create () in
  let inserts = 20_000 in
  let seconds =
    Util.Timing.time_only (fun () ->
        for _ = 1 to inserts do
          let which =
            [| Fivm.Triangle.R; Fivm.Triangle.S; Fivm.Triangle.T |].(Util.Prng.int rng 3)
          in
          Fivm.Triangle.update g which
            ~x:(Value.Int (Util.Prng.int rng n_vertices))
            ~y:(Value.Int (Util.Prng.int rng n_vertices))
            1
        done)
  in
  Printf.printf
    "incremental maintenance: %d edge inserts in %s (%.0f/s), count %d = recount %d\n"
    inserts
    (Util.Timing.to_string seconds)
    (float_of_int inserts /. seconds)
    (Fivm.Triangle.count g) (Fivm.Triangle.recompute g);

  (* 5. the degree statistics adaptive processing keys off (Section 3.2) *)
  let stats = Stats.degree_stats r "a" in
  Format.printf "degree profile of R.a: %a@." Stats.pp stats
