examples/ifaq_stages.mli:
