examples/incremental.ml: Array Datagen Fivm Fun List Mat Printf Rings Timing Util
