examples/factorised_join.ml: Factorized Fivm Format List Ops Printf Relation Relational Rings Schema String Util Value
