examples/model_zoo.ml: Aggregates Array Baseline Database Datagen Hashtbl Lazy List Lmfao Ml Printf Relation Relational String Value
