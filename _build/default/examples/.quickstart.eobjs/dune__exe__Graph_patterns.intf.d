examples/graph_patterns.mli:
