examples/graph_patterns.ml: Aggregates Array Database Factorized Fivm Format Join_tree List Lmfao Ops Printf Relation Relational Schema Stats Util Value
