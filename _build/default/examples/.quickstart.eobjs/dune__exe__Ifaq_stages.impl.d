examples/ifaq_stages.ml: Float Format Ifaq List Printf String Util
