examples/factorised_join.mli:
