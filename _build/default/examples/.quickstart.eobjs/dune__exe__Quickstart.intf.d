examples/quickstart.mli:
