examples/incremental.mli:
