examples/quickstart.ml: Aggregates Array Database Format Ml Printf Relation Relational Schema Util Value
