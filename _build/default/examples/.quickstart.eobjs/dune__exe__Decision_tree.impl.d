examples/decision_tree.ml: Aggregates Array Database Datagen Format Ml Printf Relation Relational Schema Util Value
