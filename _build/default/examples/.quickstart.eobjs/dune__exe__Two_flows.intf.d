examples/two_flows.mli:
