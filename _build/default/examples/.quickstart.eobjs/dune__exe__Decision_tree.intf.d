examples/decision_tree.mli:
