examples/two_flows.ml: Baseline Datagen List Ml Printf Relational Sys Util
