(** In-memory bag relations with append-only mutation. *)

type t

val create : ?capacity:int -> string -> Schema.t -> t
val name : t -> string
val schema : t -> Schema.t
val cardinality : t -> int

val append : t -> Tuple.t -> unit
(** Raises [Invalid_argument] on arity mismatch. *)

val of_list : string -> Schema.t -> Tuple.t list -> t
val get : t -> int -> Tuple.t
val iter : (Tuple.t -> unit) -> t -> unit
val iteri : (int -> Tuple.t -> unit) -> t -> unit
val fold : ('a -> Tuple.t -> 'a) -> 'a -> t -> 'a
val to_list : t -> Tuple.t list
val copy : t -> t
val value_at : t -> int -> string -> Value.t
(** [value_at r i attr] is tuple [i]'s value of attribute [attr]. *)

val value_count : t -> int
(** Cardinality times arity — the paper's representation-size measure. *)

val csv_size : t -> int
(** Byte size of the CSV serialisation (without materialising it). *)

val csv_rows : t -> string list list
val of_csv_rows : string -> Schema.t -> string list list -> t
val distinct_count : t -> int
val pp : Format.formatter -> t -> unit
