(** Database values and their scalar types. *)

type t = Null | Int of int | Float of float | Str of string

type ty = TInt | TFloat | TStr

val type_of : t -> ty option
(** [None] for [Null]. *)

val ty_to_string : ty -> string

val compare : t -> t -> int
(** Total order; within-constructor comparisons are the natural ones. *)

val equal : t -> t -> bool
val hash : t -> int

val to_float : t -> float
(** Numeric view ([Null] is 0.0). Raises on strings. *)

val to_int : t -> int
val to_string : t -> string
val of_string : ty -> string -> t
(** Parse a CSV cell at the given type. Raises on malformed input. *)

val pp : Format.formatter -> t -> unit
