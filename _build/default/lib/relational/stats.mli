(** Relation statistics: value degrees and heavy/light splits (Section 3.2,
    "Data degree" — the basis of adaptive worst-case optimal processing). *)

type degree_stats = {
  attr : string;
  distinct : int;
  max_degree : int;
  avg_degree : float;
  heavy : (Value.t * int) list;  (** degree above the threshold, descending *)
  light_count : int;
}

val degrees : Relation.t -> string -> (Value.t * int) list
(** Occurrence count of each value of the attribute. *)

val default_threshold : Relation.t -> int
(** The classical sqrt(|R|) heavy/light threshold. *)

val degree_stats : ?threshold:int -> Relation.t -> string -> degree_stats

val heavy_light_partition :
  ?threshold:int -> Relation.t -> string -> Relation.t * Relation.t
(** Tuples whose [attr] value is heavy, and the rest. *)

val distinct_counts : Relation.t -> (string * int) list
val pp : Format.formatter -> degree_stats -> unit
