(** Query hypergraphs and GYO reduction (alpha-acyclicity test + ear/witness
    structure used to build join trees). *)

module SS : Set.S with type elt = string

type edge = { label : string; vertices : SS.t }
type t = edge list

val edge : string -> string list -> edge
val of_relations : Relation.t list -> t
val vertices : t -> SS.t

val find_ear : t -> (edge * string option * t) option
(** One GYO step: an ear, its witness's label (if any other edge remains),
    and the remaining edges. [None] if no ear exists. *)

val gyo : t -> ((string * string option) list * string list) option
(** Full reduction: [(parents, elimination_order)] on acyclic inputs —
    [parents] maps each edge label to its witness (root maps to [None]),
    [elimination_order] lists labels leaf-first. [None] when cyclic. *)

val is_acyclic : t -> bool
val pp : Format.formatter -> t -> unit
