(* Database values.

   Integers double as dictionary-encoded categorical values (see
   [Util.Interner]); floats carry continuous features; strings appear only at
   the edges (CSV import/export). *)

type t = Null | Int of int | Float of float | Str of string

type ty = TInt | TFloat | TStr

let type_of = function
  | Null -> None
  | Int _ -> Some TInt
  | Float _ -> Some TFloat
  | Str _ -> Some TStr

let ty_to_string = function TInt -> "int" | TFloat -> "float" | TStr -> "string"

(* Total order: Null < Int < Float < Str, numeric within a constructor.
   Ints and floats are NOT compared cross-type: schemas are homogeneous per
   attribute, so cross-constructor comparisons only order distinct types. *)
let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Null, _ -> -1
  | _, Null -> 1
  | Int x, Int y -> Stdlib.compare x y
  | Int _, _ -> -1
  | _, Int _ -> 1
  | Float x, Float y -> Stdlib.compare x y
  | Float _, _ -> -1
  | _, Float _ -> 1
  | Str x, Str y -> Stdlib.compare x y

let equal a b = compare a b = 0

let hash = function
  | Null -> 0
  | Int x -> x * 0x9E3779B1
  | Float x -> Hashtbl.hash x
  | Str s -> Hashtbl.hash s

(* Numeric view; categorical ints are also usable as numbers when the model
   wants raw codes (the sparse-tensor encoding avoids that, but tests do). *)
let to_float = function
  | Int x -> float_of_int x
  | Float x -> x
  | Null -> 0.0
  | Str _ -> invalid_arg "Value.to_float: string value"

let to_int = function
  | Int x -> x
  | Float x -> int_of_float x
  | Null -> 0
  | Str _ -> invalid_arg "Value.to_int: string value"

let to_string = function
  | Null -> ""
  | Int x -> string_of_int x
  | Float x -> Printf.sprintf "%.6g" x
  | Str s -> s

let of_string ty s =
  match ty with
  | TInt -> Int (int_of_string s)
  | TFloat -> Float (float_of_string s)
  | TStr -> Str s

let pp ppf v = Format.pp_print_string ppf (to_string v)
