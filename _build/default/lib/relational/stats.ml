(* Relation statistics: distinct counts and value degrees (Section 3.2,
   "Data degree": adaptive query processing distinguishes heavy and light
   values by their number of occurrences; worst-case optimal joins and
   incremental triangle maintenance both rely on this split). *)

type degree_stats = {
  attr : string;
  distinct : int;
  max_degree : int;
  avg_degree : float;
  heavy : (Value.t * int) list; (* values with degree above the threshold *)
  light_count : int;
}

(* Occurrence counts of each value of [attr]. *)
let degrees (rel : Relation.t) (attr : string) : (Value.t * int) list =
  let pos = Schema.position (Relation.schema rel) attr in
  let counts = Hashtbl.create 64 in
  Relation.iter
    (fun t ->
      let v = t.(pos) in
      Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v)))
    rel;
  Hashtbl.fold (fun v c acc -> (v, c) :: acc) counts []

(* Heavy/light split: a value is heavy when its degree exceeds [threshold].
   The classical choice is sqrt(|R|), which [default_threshold] provides. *)
let default_threshold rel =
  Stdlib.max 1 (int_of_float (sqrt (float_of_int (Relation.cardinality rel))))

let degree_stats ?threshold (rel : Relation.t) (attr : string) : degree_stats =
  let threshold =
    match threshold with Some t -> t | None -> default_threshold rel
  in
  let ds = degrees rel attr in
  let distinct = List.length ds in
  let heavy = List.filter (fun (_, c) -> c > threshold) ds in
  {
    attr;
    distinct;
    max_degree = List.fold_left (fun m (_, c) -> Stdlib.max m c) 0 ds;
    avg_degree =
      (if distinct = 0 then 0.0
       else float_of_int (Relation.cardinality rel) /. float_of_int distinct);
    heavy = List.sort (fun (_, a) (_, b) -> compare b a) heavy;
    light_count = distinct - List.length heavy;
  }

(* Partition a relation into its heavy and light tuples on [attr]. *)
let heavy_light_partition ?threshold (rel : Relation.t) (attr : string) :
    Relation.t * Relation.t =
  let stats = degree_stats ?threshold rel attr in
  let heavy_values = Hashtbl.create 16 in
  List.iter (fun (v, _) -> Hashtbl.replace heavy_values v ()) stats.heavy;
  let pos = Schema.position (Relation.schema rel) attr in
  let heavy = Relation.create (Relation.name rel ^ "_heavy") (Relation.schema rel) in
  let light = Relation.create (Relation.name rel ^ "_light") (Relation.schema rel) in
  Relation.iter
    (fun t ->
      Relation.append (if Hashtbl.mem heavy_values t.(pos) then heavy else light) t)
    rel;
  (heavy, light)

(* Per-attribute distinct counts for a whole relation. *)
let distinct_counts (rel : Relation.t) : (string * int) list =
  List.map
    (fun a -> (a, List.length (degrees rel a)))
    (Schema.names (Relation.schema rel))

let pp ppf (s : degree_stats) =
  Format.fprintf ppf
    "%s: %d distinct, max degree %d, avg %.1f, %d heavy / %d light" s.attr
    s.distinct s.max_degree s.avg_degree (List.length s.heavy) s.light_count
