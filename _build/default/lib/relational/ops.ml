(* Physical relational operators: selection, projection, hash joins, group-by
   aggregation, set operations. These implement the classical query
   processing that the structure-agnostic baselines use and against which
   the factorised engines are compared — now over the typed columnar layer:
   predicates compile against columns, rows move column-to-column without
   boxed intermediates, and join/group-by keys hash as packed ints via
   [Keypack] instead of boxed tuple arrays. *)

module Hybrid = Keypack.Hybrid

let select ?(name = "sigma") pred rel =
  let schema = Relation.schema rel in
  let keep = Predicate.compile_cols schema (Relation.columns rel) pred in
  let out = Relation.create name schema in
  ignore (Relation.scan rel);
  for i = 0 to Relation.cardinality rel - 1 do
    if keep i then Relation.append_from out rel i
  done;
  out

let select_fn ?(name = "sigma") f rel =
  let out = Relation.create name (Relation.schema rel) in
  Relation.iteri (fun i t -> if f t then Relation.append_from out rel i) rel;
  out

(* Bag projection: whole-column copies, no per-row work. *)
let project ?(name = "pi") rel attr_names =
  let schema = Relation.schema rel in
  let positions = Array.of_list (Schema.positions schema attr_names) in
  let out_schema = Schema.project schema attr_names in
  Relation.of_projection name rel positions out_schema

let distinct ?(name = "delta") rel =
  let out = Relation.create name (Relation.schema rel) in
  let n = Relation.cardinality rel in
  let all = Array.init (Schema.arity (Relation.schema rel)) Fun.id in
  let key = Relation.extractor rel all in
  let seen = Hybrid.create (Stdlib.max 16 n) in
  for i = 0 to n - 1 do
    let k = key i in
    if not (Hybrid.mem seen k) then begin
      Hybrid.add seen k ();
      Relation.append_from out rel i
    end
  done;
  out

let project_distinct ?name rel attr_names = distinct ?name (project rel attr_names)

let union ?(name = "union") a b =
  if not (Schema.equal (Relation.schema a) (Relation.schema b)) then
    invalid_arg "Ops.union: schema mismatch";
  let out = Relation.create name (Relation.schema a) in
  for i = 0 to Relation.cardinality a - 1 do
    Relation.append_from out a i
  done;
  for i = 0 to Relation.cardinality b - 1 do
    Relation.append_from out b i
  done;
  out

(* Index a relation by a key: packed key to the list of row indexes (most
   recently appended first). *)
let build_index rel key_positions =
  let key = Relation.extractor rel key_positions in
  let idx = Hybrid.create (Stdlib.max 16 (Relation.cardinality rel)) in
  for i = 0 to Relation.cardinality rel - 1 do
    let k = key i in
    match Hybrid.find_opt idx k with
    | Some l -> l := i :: !l
    | None -> Hybrid.add idx k (ref [ i ])
  done;
  idx

(* Natural hash join on the attributes common to both schemas. The output
   schema is [a]'s attributes followed by [b]'s non-shared attributes, as in
   [Schema.join]. If there are no common attributes this is the Cartesian
   product. *)
let natural_join ?(name = "join") a b =
  let sa = Relation.schema a and sb = Relation.schema b in
  let key_names = Schema.common sa sb in
  let ka = Array.of_list (Schema.positions sa key_names) in
  let kb = Array.of_list (Schema.positions sb key_names) in
  let out_schema = Schema.join sa sb in
  (* positions of b's non-shared attributes *)
  let b_extra =
    Array.of_list
      (List.filter_map
         (fun n -> if Schema.mem sa n then None else Some (Schema.position sb n))
         (Schema.names sb))
  in
  let out = Relation.create name out_schema in
  (* build on the smaller side, probe with the larger *)
  let build_rel, probe_rel, build_key, probe_key, build_is_a =
    if Relation.cardinality a <= Relation.cardinality b then (a, b, ka, kb, true)
    else (b, a, kb, ka, false)
  in
  let idx = build_index build_rel build_key in
  let probe = Relation.extractor probe_rel probe_key in
  ignore (Relation.scan probe_rel);
  for j = 0 to Relation.cardinality probe_rel - 1 do
    match Hybrid.find_opt idx (probe j) with
    | None -> ()
    | Some rows ->
        List.iter
          (fun i ->
            if build_is_a then Relation.append_concat out a i b b_extra j
            else Relation.append_concat out a j b b_extra i)
          !rows
  done;
  out

let natural_join_all ?(name = "join") = function
  | [] -> invalid_arg "Ops.natural_join_all: empty list"
  | r :: rest -> List.fold_left (fun acc r' -> natural_join ~name acc r') r rest

(* Tuples of [a] with at least one join partner in [b]. *)
let semijoin ?(name = "semijoin") a b =
  let sa = Relation.schema a and sb = Relation.schema b in
  let key_names = Schema.common sa sb in
  let ka = Array.of_list (Schema.positions sa key_names) in
  let kb = Array.of_list (Schema.positions sb key_names) in
  let keys = Hybrid.create (Stdlib.max 16 (Relation.cardinality b)) in
  let kb_of = Relation.extractor b kb in
  for j = 0 to Relation.cardinality b - 1 do
    let k = kb_of j in
    if not (Hybrid.mem keys k) then Hybrid.add keys k ()
  done;
  let out = Relation.create name sa in
  let ka_of = Relation.extractor a ka in
  for i = 0 to Relation.cardinality a - 1 do
    if Hybrid.mem keys (ka_of i) then Relation.append_from out a i
  done;
  out

(* Aggregation functions for [group_by]. Each aggregate reads a float from a
   tuple and is summed/counted/etc. within a group. *)
type agg =
  | Count
  | Sum of (Tuple.t -> float)
  | Min of (Tuple.t -> float)
  | Max of (Tuple.t -> float)
  | Avg of (Tuple.t -> float)

let sum_of_attr schema attr =
  let i = Schema.position schema attr in
  Sum (fun t -> Value.to_float t.(i))

(* Group-by aggregation: the output schema is the key attributes followed by
   one float column per aggregate, named as given. Grouping hashes packed
   keys; the boxed tuple is materialised per row only when an aggregate
   closure needs it. *)
let group_by ?(name = "gamma") rel ~key ~aggs =
  let schema = Relation.schema rel in
  let key_positions = Array.of_list (Schema.positions schema key) in
  let key_arity = Array.length key_positions in
  let out_schema =
    Schema.of_list
      (List.map (fun n -> Schema.attr_at schema (Schema.position schema n)) key
      @ List.map (fun (agg_name, _) -> Schema.attr agg_name Value.TFloat) aggs)
  in
  let aggs = Array.of_list (List.map snd aggs) in
  let n_aggs = Array.length aggs in
  let needs_tuple = Array.exists (function Count -> false | _ -> true) aggs in
  let key_of = Relation.extractor rel key_positions in
  (* per-group accumulators: sums plus a count (avg and count need it) *)
  let groups = Hybrid.create 64 in
  for i = 0 to Relation.cardinality rel - 1 do
    let k = key_of i in
    let acc =
      match Hybrid.find_opt groups k with
      | Some acc -> acc
      | None ->
          let acc = (Array.make n_aggs 0.0, ref 0, Array.make n_aggs nan) in
          Hybrid.add groups k acc;
          acc
    in
    let sums, count, extremes = acc in
    incr count;
    if needs_tuple then begin
      let t = Relation.get rel i in
      Array.iteri
        (fun j agg ->
          match agg with
          | Count -> ()
          | Sum f | Avg f -> sums.(j) <- sums.(j) +. f t
          | Min f ->
              let v = f t in
              if Float.is_nan extremes.(j) || v < extremes.(j) then extremes.(j) <- v
          | Max f ->
              let v = f t in
              if Float.is_nan extremes.(j) || v > extremes.(j) then extremes.(j) <- v)
        aggs
    end
  done;
  let out = Relation.create ~capacity:(Hybrid.length groups) name out_schema in
  Hybrid.iter
    (fun k (sums, count, extremes) ->
      let agg_values =
        Array.mapi
          (fun j agg ->
            let x =
              match agg with
              | Count -> float_of_int !count
              | Sum _ -> sums.(j)
              | Avg _ -> sums.(j) /. float_of_int !count
              | Min _ | Max _ -> extremes.(j)
            in
            Value.Float x)
          aggs
      in
      Relation.append out (Array.append (Keypack.key_tuple key_arity k) agg_values))
    groups;
  out

(* Scalar aggregation (no group-by): returns the aggregate values in order. *)
let aggregate rel aggs =
  let n = List.length aggs in
  let sums = Array.make n 0.0 in
  let extremes = Array.make n nan in
  let count = ref 0 in
  let aggs = Array.of_list aggs in
  Relation.iter
    (fun t ->
      incr count;
      Array.iteri
        (fun j agg ->
          match agg with
          | Count -> ()
          | Sum f | Avg f -> sums.(j) <- sums.(j) +. f t
          | Min f ->
              let v = f t in
              if Float.is_nan extremes.(j) || v < extremes.(j) then extremes.(j) <- v
          | Max f ->
              let v = f t in
              if Float.is_nan extremes.(j) || v > extremes.(j) then extremes.(j) <- v)
        aggs)
    rel;
  Array.to_list
    (Array.mapi
       (fun j agg ->
         match agg with
         | Count -> float_of_int !count
         | Sum _ -> sums.(j)
         | Avg _ -> sums.(j) /. float_of_int !count
         | Min _ | Max _ -> extremes.(j))
       aggs)

let sort_by ?(name = "sort") rel attr_names =
  let schema = Relation.schema rel in
  let positions = Array.of_list (Schema.positions schema attr_names) in
  let arr = Array.of_list (Relation.to_list rel) in
  Array.sort
    (fun a b -> Tuple.compare (Tuple.project a positions) (Tuple.project b positions))
    arr;
  Relation.of_list name schema (Array.to_list arr)
