(* Physical relational operators: selection, projection, hash joins, group-by
   aggregation, set operations. These implement the classical
   tuple-at-a-time query processing that the structure-agnostic baselines use
   and against which the factorised engines are compared. *)

let select ?(name = "sigma") pred rel =
  let schema = Relation.schema rel in
  let keep = Predicate.compile schema pred in
  let out = Relation.create name schema in
  Relation.iter (fun t -> if keep t then Relation.append out t) rel;
  out

let select_fn ?(name = "sigma") f rel =
  let out = Relation.create name (Relation.schema rel) in
  Relation.iter (fun t -> if f t then Relation.append out t) rel;
  out

(* Bag projection. *)
let project ?(name = "pi") rel attr_names =
  let schema = Relation.schema rel in
  let positions = Array.of_list (Schema.positions schema attr_names) in
  let out_schema = Schema.project schema attr_names in
  let out = Relation.create ~capacity:(Relation.cardinality rel) name out_schema in
  Relation.iter (fun t -> Relation.append out (Tuple.project t positions)) rel;
  out

let distinct ?(name = "delta") rel =
  let out = Relation.create name (Relation.schema rel) in
  let seen = Tuple.Tbl.create (Stdlib.max 16 (Relation.cardinality rel)) in
  Relation.iter
    (fun t ->
      if not (Tuple.Tbl.mem seen t) then begin
        Tuple.Tbl.add seen t ();
        Relation.append out t
      end)
    rel;
  out

let project_distinct ?name rel attr_names = distinct ?name (project rel attr_names)

let union ?(name = "union") a b =
  if not (Schema.equal (Relation.schema a) (Relation.schema b)) then
    invalid_arg "Ops.union: schema mismatch";
  let out = Relation.create name (Relation.schema a) in
  Relation.iter (Relation.append out) a;
  Relation.iter (Relation.append out) b;
  out

(* Index a relation by a key: map from key tuple to the list of row indexes. *)
let build_index rel key_positions =
  let idx = Tuple.Tbl.create (Stdlib.max 16 (Relation.cardinality rel)) in
  Relation.iteri
    (fun i t ->
      let key = Tuple.project t key_positions in
      match Tuple.Tbl.find_opt idx key with
      | Some l -> l := i :: !l
      | None -> Tuple.Tbl.add idx key (ref [ i ]))
    rel;
  idx

(* Natural hash join on the attributes common to both schemas. The output
   schema is [a]'s attributes followed by [b]'s non-shared attributes, as in
   [Schema.join]. If there are no common attributes this is the Cartesian
   product. *)
let natural_join ?(name = "join") a b =
  let sa = Relation.schema a and sb = Relation.schema b in
  let key_names = Schema.common sa sb in
  let ka = Array.of_list (Schema.positions sa key_names) in
  let kb = Array.of_list (Schema.positions sb key_names) in
  let out_schema = Schema.join sa sb in
  (* positions of b's non-shared attributes *)
  let b_extra =
    Array.of_list
      (List.filter_map
         (fun n -> if Schema.mem sa n then None else Some (Schema.position sb n))
         (Schema.names sb))
  in
  let out = Relation.create name out_schema in
  (* build on the smaller side, probe with the larger *)
  let build_rel, probe_rel, build_key, probe_key, build_is_a =
    if Relation.cardinality a <= Relation.cardinality b then (a, b, ka, kb, true)
    else (b, a, kb, ka, false)
  in
  let idx = build_index build_rel build_key in
  Relation.iter
    (fun probe_t ->
      let key = Tuple.project probe_t probe_key in
      match Tuple.Tbl.find_opt idx key with
      | None -> ()
      | Some rows ->
          List.iter
            (fun i ->
              let build_t = Relation.get build_rel i in
              let ta, tb = if build_is_a then (build_t, probe_t) else (probe_t, build_t) in
              Relation.append out
                (Tuple.concat ta (Tuple.project tb b_extra)))
            !rows)
    probe_rel;
  out

let natural_join_all ?(name = "join") = function
  | [] -> invalid_arg "Ops.natural_join_all: empty list"
  | r :: rest -> List.fold_left (fun acc r' -> natural_join ~name acc r') r rest

(* Tuples of [a] with at least one join partner in [b]. *)
let semijoin ?(name = "semijoin") a b =
  let sa = Relation.schema a and sb = Relation.schema b in
  let key_names = Schema.common sa sb in
  let ka = Array.of_list (Schema.positions sa key_names) in
  let kb = Array.of_list (Schema.positions sb key_names) in
  let keys = Tuple.Tbl.create (Stdlib.max 16 (Relation.cardinality b)) in
  Relation.iter
    (fun t ->
      let k = Tuple.project t kb in
      if not (Tuple.Tbl.mem keys k) then Tuple.Tbl.add keys k ())
    b;
  let out = Relation.create name sa in
  Relation.iter
    (fun t -> if Tuple.Tbl.mem keys (Tuple.project t ka) then Relation.append out t)
    a;
  out

(* Aggregation functions for [group_by]. Each aggregate reads a float from a
   tuple and is summed/counted/etc. within a group. *)
type agg =
  | Count
  | Sum of (Tuple.t -> float)
  | Min of (Tuple.t -> float)
  | Max of (Tuple.t -> float)
  | Avg of (Tuple.t -> float)

let sum_of_attr schema attr =
  let i = Schema.position schema attr in
  Sum (fun t -> Value.to_float t.(i))

(* Group-by aggregation: the output schema is the key attributes followed by
   one float column per aggregate, named as given. *)
let group_by ?(name = "gamma") rel ~key ~aggs =
  let schema = Relation.schema rel in
  let key_positions = Array.of_list (Schema.positions schema key) in
  let out_schema =
    Schema.of_list
      (List.map (fun n -> Schema.attr_at schema (Schema.position schema n)) key
      @ List.map (fun (agg_name, _) -> Schema.attr agg_name Value.TFloat) aggs)
  in
  let aggs = Array.of_list (List.map snd aggs) in
  let n_aggs = Array.length aggs in
  (* per-group accumulators: sums plus a count (avg and count need it) *)
  let groups = Tuple.Tbl.create 64 in
  Relation.iter
    (fun t ->
      let k = Tuple.project t key_positions in
      let acc =
        match Tuple.Tbl.find_opt groups k with
        | Some acc -> acc
        | None ->
            let acc = (Array.make n_aggs 0.0, ref 0, Array.make n_aggs nan) in
            Tuple.Tbl.add groups k acc;
            acc
      in
      let sums, count, extremes = acc in
      incr count;
      Array.iteri
        (fun j agg ->
          match agg with
          | Count -> ()
          | Sum f | Avg f -> sums.(j) <- sums.(j) +. f t
          | Min f ->
              let v = f t in
              if Float.is_nan extremes.(j) || v < extremes.(j) then extremes.(j) <- v
          | Max f ->
              let v = f t in
              if Float.is_nan extremes.(j) || v > extremes.(j) then extremes.(j) <- v)
        aggs)
    rel;
  let out = Relation.create ~capacity:(Tuple.Tbl.length groups) name out_schema in
  Tuple.Tbl.iter
    (fun k (sums, count, extremes) ->
      let agg_values =
        Array.mapi
          (fun j agg ->
            let x =
              match agg with
              | Count -> float_of_int !count
              | Sum _ -> sums.(j)
              | Avg _ -> sums.(j) /. float_of_int !count
              | Min _ | Max _ -> extremes.(j)
            in
            Value.Float x)
          aggs
      in
      Relation.append out (Array.append k agg_values))
    groups;
  out

(* Scalar aggregation (no group-by): returns the aggregate values in order. *)
let aggregate rel aggs =
  let n = List.length aggs in
  let sums = Array.make n 0.0 in
  let extremes = Array.make n nan in
  let count = ref 0 in
  let aggs = Array.of_list aggs in
  Relation.iter
    (fun t ->
      incr count;
      Array.iteri
        (fun j agg ->
          match agg with
          | Count -> ()
          | Sum f | Avg f -> sums.(j) <- sums.(j) +. f t
          | Min f ->
              let v = f t in
              if Float.is_nan extremes.(j) || v < extremes.(j) then extremes.(j) <- v
          | Max f ->
              let v = f t in
              if Float.is_nan extremes.(j) || v > extremes.(j) then extremes.(j) <- v)
        aggs)
    rel;
  Array.to_list
    (Array.mapi
       (fun j agg ->
         match agg with
         | Count -> float_of_int !count
         | Sum _ -> sums.(j)
         | Avg _ -> sums.(j) /. float_of_int !count
         | Min _ | Max _ -> extremes.(j))
       aggs)

let sort_by ?(name = "sort") rel attr_names =
  let schema = Relation.schema rel in
  let positions = Array.of_list (Schema.positions schema attr_names) in
  let arr = Array.of_list (Relation.to_list rel) in
  Array.sort
    (fun a b -> Tuple.compare (Tuple.project a positions) (Tuple.project b positions))
    arr;
  Relation.of_list name schema (Array.to_list arr)
