(** Join trees for acyclic natural-join queries, re-rootable for LMFAO's
    multi-root aggregate decomposition. *)

exception Cyclic
(** Raised by {!build} when the query hypergraph is not alpha-acyclic. *)

type t
(** The undirected join tree over a fixed set of relations. *)

type node = {
  rel : Relation.t;
  key : string list;  (** join attributes shared with the parent; [[]] at root *)
  children : node list;
}

val build : Relation.t list -> t
(** Build via GYO reduction. Disconnected queries are chained under one root
    with empty (Cartesian) keys. @raise Cyclic on cyclic queries. *)

val relations : t -> Relation.t list
val relation_by_name : t -> string -> Relation.t
val root_name : t -> string
val node_names : t -> string list

val tree : ?root:string -> t -> node
(** Directed tree rooted at [root] (default: the GYO root). Any relation can
    serve as root; the running-intersection property is preserved. *)

val fold_node : ('a -> node -> 'a) -> 'a -> node -> 'a
(** Pre-order fold. *)

val subtree_attrs : node -> string list
(** Attributes appearing anywhere in the subtree. *)

val all_attrs : t -> string list
(** Sorted distinct attributes of the whole query. *)

val pp : Format.formatter -> t -> unit
