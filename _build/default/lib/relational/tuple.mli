(** Tuples: flat arrays of values positionally aligned with a schema. *)

type t = Value.t array

val arity : t -> int
val get : t -> int -> Value.t
val project : t -> int array -> t
(** Keep the values at the given positions, in that order. *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Lexicographic. *)

val hash : t -> int
val concat : t -> t -> t
val to_string : t -> string
val pp : Format.formatter -> t -> unit

module Key : Hashtbl.HashedType with type t = t
module Tbl : Hashtbl.S with type key = t
(** Hash tables keyed by tuples, used for join and group-by indexes. *)
