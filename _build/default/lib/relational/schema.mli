(** Relation schemas: ordered, typed, named attributes with O(1) position
    lookup. *)

type attr = { name : string; ty : Value.ty }

type t

val attr : string -> Value.ty -> attr
val of_list : attr list -> t
(** Raises on duplicate attribute names. *)

val make : (string * Value.ty) list -> t
val arity : t -> int
val attrs : t -> attr list
val names : t -> string list
val mem : t -> string -> bool
val position : t -> string -> int
(** Raises [Invalid_argument] on unknown attributes. *)

val position_opt : t -> string -> int option
val attr_at : t -> int -> attr
val ty_of : t -> string -> Value.ty
val positions : t -> string list -> int list
val common : t -> t -> string list
(** Attributes shared by both schemas, in the first schema's order. *)

val equal : t -> t -> bool
val join : t -> t -> t
(** Natural-join schema: first schema's attributes, then the second's extras. *)

val project : t -> string list -> t
val pp : Format.formatter -> t -> unit
