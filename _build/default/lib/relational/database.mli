(** A named collection of relations joined by the feature-extraction query
    (their natural join). *)

type t

val create : string -> Relation.t list -> t
(** Raises on duplicate relation names. *)

val name : t -> string
val relations : t -> Relation.t list
val relation : t -> string -> Relation.t
val total_cardinality : t -> int
val total_value_count : t -> int
val total_csv_size : t -> int

val join_tree : t -> Join_tree.t
(** @raise Join_tree.Cyclic when the schema is cyclic. *)

val materialise_join : t -> Relation.t
(** The materialised feature-extraction query (structure-agnostic path). *)

val attribute_names : t -> string list
val pp : Format.formatter -> t -> unit
