(* Query hypergraphs and the GYO (Graham / Yu-Ozsoyoglu) reduction.

   A feature-extraction query is represented by its hypergraph: one hyperedge
   per relation, whose vertices are the relation's attributes. GYO reduction
   decides alpha-acyclicity and, as a by-product, produces the parent ("ear
   witness") structure from which [Join_tree] builds a join tree with the
   running-intersection property. The paper's feature-extraction queries are
   typically acyclic (Section 2.1), and its Section 4 footnote handles cyclic
   queries by pre-materialising hypertree-decomposition bags — we follow the
   acyclic path and reject cyclic inputs. *)

module SS = Set.Make (String)

type edge = { label : string; vertices : SS.t }

type t = edge list

let edge label attrs = { label; vertices = SS.of_list attrs }

let of_relations rels =
  List.map
    (fun r -> edge (Relation.name r) (Schema.names (Relation.schema r)))
    rels

let vertices t = List.fold_left (fun acc e -> SS.union acc e.vertices) SS.empty t

(* One GYO "ear" step. Edge [e] is an ear if all vertices it shares with the
   rest of the hypergraph are contained in a single other edge [w] (the
   witness); isolated edges (sharing nothing) are ears with any witness.
   Returns [(ear, witness_label option)] or [None] if no ear exists. *)
let find_ear edges =
  let rec try_edges before = function
    | [] -> None
    | e :: after ->
        let others = List.rev_append before after in
        if others = [] then Some (e, None, others)
        else begin
          (* vertices of e shared with any other edge *)
          let shared =
            SS.filter
              (fun v -> List.exists (fun o -> SS.mem v o.vertices) others)
              e.vertices
          in
          match
            List.find_opt (fun o -> SS.subset shared o.vertices) others
          with
          | Some w -> Some (e, Some w.label, others)
          | None -> try_edges (e :: before) after
        end
  in
  try_edges [] edges

(* GYO reduction. Returns [Some parents] where [parents] maps each edge label
   to its witness's label (the last remaining edge maps to [None]), or [None]
   if the hypergraph is cyclic. The elimination order lists labels leaf-first. *)
let gyo (t : t) =
  let rec loop edges parents order =
    match edges with
    | [] -> Some (parents, List.rev order)
    | [ e ] -> Some ((e.label, None) :: parents, List.rev (e.label :: order))
    | _ -> (
        match find_ear edges with
        | None -> None
        | Some (e, witness, rest) ->
            loop rest ((e.label, witness) :: parents) (e.label :: order))
  in
  loop t [] []

let is_acyclic t = Option.is_some (gyo t)

let pp ppf t =
  List.iter
    (fun e ->
      Format.fprintf ppf "%s{%s} " e.label
        (String.concat "," (SS.elements e.vertices)))
    t
