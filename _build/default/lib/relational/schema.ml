(* Relation schemas: ordered lists of typed, named attributes. *)

type attr = { name : string; ty : Value.ty }

type t = { attrs : attr array; index : (string, int) Hashtbl.t }

let attr name ty = { name; ty }

let of_list attrs =
  let attrs = Array.of_list attrs in
  let index = Hashtbl.create (Array.length attrs) in
  Array.iteri
    (fun i a ->
      if Hashtbl.mem index a.name then
        invalid_arg (Printf.sprintf "Schema.of_list: duplicate attribute %s" a.name);
      Hashtbl.add index a.name i)
    attrs;
  { attrs; index }

let make names_tys = of_list (List.map (fun (n, ty) -> attr n ty) names_tys)

let arity t = Array.length t.attrs

let attrs t = Array.to_list t.attrs

let names t = Array.to_list (Array.map (fun a -> a.name) t.attrs)

let mem t name = Hashtbl.mem t.index name

let position t name =
  match Hashtbl.find_opt t.index name with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Schema.position: unknown attribute %s" name)

let position_opt t name = Hashtbl.find_opt t.index name

let attr_at t i = t.attrs.(i)

let ty_of t name = (attr_at t (position t name)).ty

let positions t names = List.map (position t) names

(* Attributes shared by two schemas, in [a]'s order. *)
let common a b = List.filter (mem b) (names a)

let equal a b =
  arity a = arity b
  && Array.for_all2 (fun x y -> x.name = y.name && x.ty = y.ty) a.attrs b.attrs

(* Schema of the natural join: [a]'s attributes followed by [b]'s attributes
   that are not in [a]. *)
let join a b =
  let extra = List.filter (fun at -> not (mem a at.name)) (attrs b) in
  of_list (attrs a @ extra)

let project t names = of_list (List.map (fun n -> attr_at t (position t n)) names)

let pp ppf t =
  Format.fprintf ppf "(%s)"
    (String.concat ", "
       (List.map
          (fun a -> Printf.sprintf "%s:%s" a.name (Value.ty_to_string a.ty))
          (attrs t)))
