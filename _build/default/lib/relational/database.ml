(* A database: a named collection of relations plus the feature-extraction
   query they participate in (their natural join), with size accounting used
   throughout the experiments. *)

type t = { name : string; relations : Relation.t list }

let create name relations =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun r ->
      let n = Relation.name r in
      if Hashtbl.mem seen n then
        invalid_arg (Printf.sprintf "Database.create: duplicate relation %s" n);
      Hashtbl.add seen n ())
    relations;
  { name; relations }

let name t = t.name
let relations t = t.relations

let relation t rel_name =
  match List.find_opt (fun r -> Relation.name r = rel_name) t.relations with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Database.relation: unknown %s" rel_name)

let total_cardinality t =
  List.fold_left (fun acc r -> acc + Relation.cardinality r) 0 t.relations

let total_value_count t =
  List.fold_left (fun acc r -> acc + Relation.value_count r) 0 t.relations

let total_csv_size t =
  List.fold_left (fun acc r -> acc + Relation.csv_size r) 0 t.relations

let join_tree t = Join_tree.build t.relations

(* The feature-extraction query result, fully materialised (the
   structure-agnostic path of Figure 2). Join order follows a leaf-to-root
   traversal of the join tree so intermediate results stay join-connected. *)
let materialise_join t =
  let jt = join_tree t in
  let rec order (node : Join_tree.node) =
    node.rel :: List.concat_map order node.children
  in
  Ops.natural_join_all ~name:(t.name ^ "_join") (order (Join_tree.tree jt))

let attribute_names t =
  List.sort_uniq compare
    (List.concat_map (fun r -> Schema.names (Relation.schema r)) t.relations)

let pp ppf t =
  Format.fprintf ppf "database %s:@\n" t.name;
  List.iter
    (fun r ->
      Format.fprintf ppf "  %s%a: %d tuples@\n" (Relation.name r) Schema.pp
        (Relation.schema r) (Relation.cardinality r))
    t.relations
