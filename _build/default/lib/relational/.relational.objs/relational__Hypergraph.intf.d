lib/relational/hypergraph.mli: Format Relation Set
