lib/relational/relation.mli: Column Format Keypack Schema Tuple Value
