lib/relational/hypergraph.ml: Format List Option Relation Schema Set String
