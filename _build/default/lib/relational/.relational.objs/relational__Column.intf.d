lib/relational/column.mli: Value
