lib/relational/keypack.mli: Column Hashtbl Tuple
