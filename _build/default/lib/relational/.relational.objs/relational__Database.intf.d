lib/relational/database.mli: Format Join_tree Relation
