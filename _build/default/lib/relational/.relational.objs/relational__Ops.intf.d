lib/relational/ops.mli: Predicate Relation Schema Tuple
