lib/relational/ops.mli: Keypack Predicate Relation Schema Tuple
