lib/relational/join_tree.mli: Format Relation
