lib/relational/tuple.ml: Array Format Hashtbl Stdlib String Value
