lib/relational/column.ml: Array Stdlib Value
