lib/relational/predicate.ml: Array Column Format List Printf Schema String Tuple Value
