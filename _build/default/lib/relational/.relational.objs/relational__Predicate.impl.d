lib/relational/predicate.ml: Array Format List Printf Schema String Tuple Value
