lib/relational/database.ml: Format Hashtbl Join_tree List Ops Printf Relation Schema
