lib/relational/stats.mli: Format Relation Value
