lib/relational/stats.ml: Array Format Hashtbl List Option Relation Schema Stdlib Value
