lib/relational/keypack.ml: Array Column Hashtbl Obs Stdlib Tuple Value
