lib/relational/relation.ml: Array Format List Printf Schema Stdlib String Tuple Value
