lib/relational/relation.ml: Array Column Format Fun Keypack List Obs Printf Schema Stdlib String Tuple Value
