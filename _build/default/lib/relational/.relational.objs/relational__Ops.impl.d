lib/relational/ops.ml: Array Float List Predicate Relation Schema Stdlib Tuple Value
