lib/relational/ops.ml: Array Float Fun Keypack List Predicate Relation Schema Stdlib Tuple Value
