lib/relational/predicate.mli: Column Format Schema Tuple Value
