lib/relational/predicate.mli: Format Schema Tuple Value
