lib/relational/join_tree.ml: Format Hashtbl Hypergraph List Option Printf Relation Schema String
