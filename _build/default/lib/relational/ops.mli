(** Physical relational operators (tuple-at-a-time), used by the
    structure-agnostic baselines and as the semantic reference for the
    factorised engines. *)

val select : ?name:string -> Predicate.t -> Relation.t -> Relation.t
val select_fn : ?name:string -> (Tuple.t -> bool) -> Relation.t -> Relation.t

val project : ?name:string -> Relation.t -> string list -> Relation.t
(** Bag projection onto the named attributes, in that order. *)

val distinct : ?name:string -> Relation.t -> Relation.t
val project_distinct : ?name:string -> Relation.t -> string list -> Relation.t
val union : ?name:string -> Relation.t -> Relation.t -> Relation.t

val build_index : Relation.t -> int array -> int list ref Keypack.Hybrid.t
(** Hash index: packed key (projection on the given positions) to row ids,
    most recently appended first. *)

val natural_join : ?name:string -> Relation.t -> Relation.t -> Relation.t
(** Hash join on common attributes; Cartesian product when none. Output
    schema per {!Schema.join}. *)

val natural_join_all : ?name:string -> Relation.t list -> Relation.t
(** Left-deep chain of natural joins. Raises on the empty list. *)

val semijoin : ?name:string -> Relation.t -> Relation.t -> Relation.t
(** Tuples of the first relation with at least one partner in the second. *)

type agg =
  | Count
  | Sum of (Tuple.t -> float)
  | Min of (Tuple.t -> float)
  | Max of (Tuple.t -> float)
  | Avg of (Tuple.t -> float)

val sum_of_attr : Schema.t -> string -> agg
(** [Sum] of the named numeric attribute. *)

val group_by :
  ?name:string -> Relation.t -> key:string list -> aggs:(string * agg) list -> Relation.t
(** Group-by aggregation; output = key attributes then one float column per
    named aggregate. *)

val aggregate : Relation.t -> agg list -> float list
(** Scalar (ungrouped) aggregation. *)

val sort_by : ?name:string -> Relation.t -> string list -> Relation.t
