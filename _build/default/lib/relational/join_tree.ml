(* Join trees for acyclic natural-join queries.

   A join tree has one node per relation; for every attribute, the nodes
   containing it form a connected subtree (running-intersection property).
   Under that property the join key between a node and its parent is exactly
   the intersection of their schemas, which is what the factorised engines
   group child views by.

   The tree is stored as an undirected adjacency structure so that it can be
   re-rooted cheaply: LMFAO decomposes different aggregates starting from
   different roots (paper Section 4, "Sharing computation"). *)

exception Cyclic

type t = {
  rels : (string * Relation.t) list;
  adj : (string, string list) Hashtbl.t; (* undirected neighbour lists *)
  default_root : string;
}

type node = {
  rel : Relation.t;
  key : string list; (* join attributes shared with the parent; [] at root *)
  children : node list;
}

let relation_by_name t name =
  match List.assoc_opt name t.rels with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Join_tree: unknown relation %s" name)

let relations t = List.map snd t.rels

let add_edge adj a b =
  let push x y =
    let cur = Option.value ~default:[] (Hashtbl.find_opt adj x) in
    Hashtbl.replace adj x (y :: cur)
  in
  push a b;
  push b a

let build rels =
  if rels = [] then invalid_arg "Join_tree.build: no relations";
  let hg = Hypergraph.of_relations rels in
  match Hypergraph.gyo hg with
  | None -> raise Cyclic
  | Some (parents, _) ->
      let adj = Hashtbl.create 16 in
      List.iter (fun r -> Hashtbl.replace adj (Relation.name r) []) rels;
      let roots = ref [] in
      List.iter
        (fun (label, witness) ->
          match witness with
          | Some w -> add_edge adj label w
          | None -> roots := label :: !roots)
        parents;
      (* A disconnected query (Cartesian product of components) yields several
         GYO roots; chain the extra roots under the first so one tree covers
         the whole query. The connecting keys are empty, i.e. products. *)
      let default_root, extra =
        match List.rev !roots with
        | r :: extra -> (r, extra)
        | [] -> assert false
      in
      List.iter (fun r -> add_edge adj default_root r) extra;
      { rels = List.map (fun r -> (Relation.name r, r)) rels; adj; default_root }

let root_name t = t.default_root

let node_names t = List.map fst t.rels

(* Materialise the directed tree rooted at [root] (default: the GYO root). *)
let tree ?root t =
  let root = Option.value ~default:t.default_root root in
  if not (List.mem_assoc root t.rels) then
    invalid_arg (Printf.sprintf "Join_tree.tree: unknown root %s" root);
  let visited = Hashtbl.create 16 in
  let rec go name parent_schema =
    Hashtbl.replace visited name ();
    let rel = relation_by_name t name in
    let key =
      match parent_schema with
      | None -> []
      | Some ps -> Schema.common (Relation.schema rel) ps
    in
    let neighbours = Option.value ~default:[] (Hashtbl.find_opt t.adj name) in
    let children =
      List.filter_map
        (fun n ->
          if Hashtbl.mem visited n then None
          else Some (go n (Some (Relation.schema rel))))
        (List.sort_uniq compare neighbours)
    in
    { rel; key; children }
  in
  go root None

let rec fold_node f acc node =
  let acc = f acc node in
  List.fold_left (fold_node f) acc node.children

(* All attributes appearing in the subtree rooted at [node]. *)
let subtree_attrs node =
  fold_node
    (fun acc n ->
      List.fold_left
        (fun acc a -> if List.mem a acc then acc else a :: acc)
        acc
        (Schema.names (Relation.schema n.rel)))
    [] node

let all_attrs t =
  List.sort_uniq compare
    (List.concat_map (fun (_, r) -> Schema.names (Relation.schema r)) t.rels)

let rec pp_node ppf node =
  Format.fprintf ppf "@[<v 2>%s [key: %s]" (Relation.name node.rel)
    (String.concat "," node.key);
  List.iter (fun c -> Format.fprintf ppf "@,%a" pp_node c) node.children;
  Format.fprintf ppf "@]"

let pp ppf t = pp_node ppf (tree t)
