(* In-memory relations: a schema plus a growable array of tuples.

   Relations are bags (duplicates allowed); set semantics is available via
   [distinct]. Mutation is append-only — the IVM layer models deletions with
   Z-multiplicities instead (see [Fivm.Delta]). *)

type t = {
  name : string;
  schema : Schema.t;
  mutable data : Tuple.t array;
  mutable size : int;
}

let create ?(capacity = 16) name schema =
  { name; schema; data = Array.make (Stdlib.max 1 capacity) [||]; size = 0 }

let name t = t.name
let schema t = t.schema
let cardinality t = t.size

let append t tuple =
  if Array.length tuple <> Schema.arity t.schema then
    invalid_arg
      (Printf.sprintf "Relation.append: arity mismatch on %s (%d vs %d)" t.name
         (Array.length tuple) (Schema.arity t.schema));
  if t.size = Array.length t.data then begin
    let bigger = Array.make (2 * t.size) [||] in
    Array.blit t.data 0 bigger 0 t.size;
    t.data <- bigger
  end;
  t.data.(t.size) <- tuple;
  t.size <- t.size + 1

let of_list name schema tuples =
  let t = create ~capacity:(Stdlib.max 1 (List.length tuples)) name schema in
  List.iter (append t) tuples;
  t

let get t i =
  if i < 0 || i >= t.size then invalid_arg "Relation.get: out of bounds";
  t.data.(i)

let iter f t =
  for i = 0 to t.size - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.size - 1 do
    f i t.data.(i)
  done

let fold f init t =
  let acc = ref init in
  for i = 0 to t.size - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_list t = List.init t.size (fun i -> t.data.(i))

let copy t = { t with data = Array.sub t.data 0 t.size; size = t.size }

let value_at t i attr = t.data.(i).(Schema.position t.schema attr)

(* Number of values = cardinality x arity; the paper's factorisation-size
   metric counts values, not tuples. *)
let value_count t = t.size * Schema.arity t.schema

(* Approximate CSV byte size: what [csv_string] would produce. Computed
   without materialising the string. *)
let csv_size t =
  let bytes = ref 0 in
  iter
    (fun tup ->
      Array.iter
        (fun v -> bytes := !bytes + String.length (Value.to_string v) + 1)
        tup)
    t;
  !bytes

let csv_rows t =
  List.map
    (fun tup -> Array.to_list (Array.map Value.to_string tup))
    (to_list t)

let of_csv_rows name schema rows =
  let tys = Array.of_list (List.map (fun (a : Schema.attr) -> a.ty) (Schema.attrs schema)) in
  let t = create ~capacity:(Stdlib.max 1 (List.length rows)) name schema in
  List.iter
    (fun row ->
      let cells = Array.of_list row in
      if Array.length cells <> Array.length tys then
        invalid_arg "Relation.of_csv_rows: arity mismatch";
      append t (Array.mapi (fun i cell -> Value.of_string tys.(i) cell) cells))
    rows;
  t

let distinct_count t =
  let seen = Tuple.Tbl.create (Stdlib.max 16 t.size) in
  iter (fun tup -> if not (Tuple.Tbl.mem seen tup) then Tuple.Tbl.add seen tup ()) t;
  Tuple.Tbl.length seen

let pp ppf t =
  Format.fprintf ppf "%s%a [%d tuples]@\n" t.name Schema.pp t.schema t.size;
  let limit = Stdlib.min t.size 20 in
  for i = 0 to limit - 1 do
    Format.fprintf ppf "  %a@\n" Tuple.pp t.data.(i)
  done;
  if t.size > limit then Format.fprintf ppf "  ... (%d more)@\n" (t.size - limit)
