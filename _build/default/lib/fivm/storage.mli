(** Mutable base-relation storage for IVM: Z-multisets of tuples plus hash
    indexes on every join key shared with a join-tree neighbour. Strategies
    compute their view deltas against the pre-update state, then the driver
    calls {!apply} once. *)

open Relational

type node = {
  name : string;
  schema : Schema.t;
  tuples : int ref Tuple.Tbl.t;  (** tuple -> multiplicity (never 0) *)
  indexes : (string * int array * Tuple.t list ref Tuple.Tbl.t) list;
      (** (neighbour, key positions in this schema, key -> distinct tuples) *)
}

type t

val create : Database.t -> t
(** Empty storage shaped by the database's schemas and join tree. *)

val node : t -> string -> node
val multiplicity : node -> Tuple.t -> int

val matching : node -> neighbour:string -> Tuple.t -> Tuple.t list
(** Distinct tuples of the node joining with the given neighbour-edge key. *)

val key_for : node -> neighbour:string -> Tuple.t -> Tuple.t
(** A tuple's join key towards the given neighbour (sorted attribute
    order — both edge endpoints agree on it). *)

val apply : t -> Delta.update -> unit
(** Apply the update to the multiset and all indexes; entries reaching
    multiplicity 0 are removed. *)

val total_tuples : t -> int
val join_tree : t -> Join_tree.t
val iter_tuples : node -> (Tuple.t -> int -> unit) -> unit
