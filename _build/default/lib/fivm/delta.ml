(* Updates with Z-multiplicities (Section 3.1, "Additive inverse").

   Inserts and deletes are treated uniformly: an update maps a tuple of some
   relation to a multiplicity delta (+1 insert, -1 delete, or any bulk). *)

open Relational

type update = { relation : string; tuple : Tuple.t; multiplicity : int }

let insert relation tuple = { relation; tuple; multiplicity = 1 }
let delete relation tuple = { relation; tuple; multiplicity = -1 }

let pp ppf u =
  Format.fprintf ppf "%+d %s%a" u.multiplicity u.relation Tuple.pp u.tuple
