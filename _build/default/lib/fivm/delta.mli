(** Updates with Z-multiplicities (Section 3.1): inserts and deletes are the
    same operation with multiplicities +1 / -1. *)

open Relational

type update = { relation : string; tuple : Tuple.t; multiplicity : int }

val insert : string -> Tuple.t -> update
val delete : string -> Tuple.t -> update
val pp : Format.formatter -> update -> unit
