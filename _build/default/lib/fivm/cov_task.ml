(* The covariance-maintenance task shared by the three IVM strategies: which
   numeric feature lives in which relation, and the per-relation lifts.

   Every feature is owned by exactly one relation (the first one, in
   database order, whose schema contains it), so the ring product across the
   join counts each factor exactly once. Aggregates are indexed over
   0..n with slot 0 the intercept: aggregate (i, j) is SUM(x_i * x_j) with
   x_0 = 1, i.e. the full (n+1)^2 covariance batch of Section 2.1. *)

open Relational

type t = {
  features : string array; (* numeric features; dimension n *)
  dim : int;
  owned : (string, (int * int) list) Hashtbl.t;
      (* relation -> (feature index, column position) for owned features *)
}

let make (db : Database.t) ~features =
  let features = Array.of_list features in
  let owned = Hashtbl.create 8 in
  List.iter
    (fun rel -> Hashtbl.replace owned (Relation.name rel) [])
    (Database.relations db);
  Array.iteri
    (fun i f ->
      let rec claim = function
        | [] -> invalid_arg (Printf.sprintf "Cov_task.make: feature %s not in any relation" f)
        | rel :: rest -> (
            let schema = Relation.schema rel in
            match Schema.position_opt schema f with
            | Some pos ->
                let name = Relation.name rel in
                Hashtbl.replace owned name ((i, pos) :: Hashtbl.find owned name)
            | None -> claim rest)
      in
      claim (Database.relations db))
    features;
  { features; dim = Array.length features; owned }

let owned_features t rel_name =
  Option.value ~default:[] (Hashtbl.find_opt t.owned rel_name)

(* Ring lift of a tuple of [rel_name]: the product of the covariance-ring
   lifts of its owned features, built directly as a sparse (1, x, x x^T). *)
let lift_cov t rel_name (tuple : Tuple.t) : Payload.Cov_dyn.t =
  let xs = Array.make t.dim 0.0 in
  List.iter
    (fun (i, pos) -> xs.(i) <- Value.to_float tuple.(pos))
    (owned_features t rel_name);
  `Elem (Rings.Covariance.of_tuple xs)

(* All (n+1)(n+2)/2 aggregates of the symmetric covariance batch. *)
let aggregate_pairs t =
  let n = t.dim in
  let acc = ref [] in
  for i = 0 to n do
    for j = i to n do
      acc := (i, j) :: !acc
    done
  done;
  Array.of_list (List.rev !acc)

(* Scalar factor contributed by a tuple of [rel_name] to aggregate (i, j):
   the owned part of x_i * x_j (x_0 = 1). *)
let factor t (i, j) rel_name (tuple : Tuple.t) =
  let mine = owned_features t rel_name in
  let value idx =
    if idx = 0 then Some 1.0
    else
      match List.find_opt (fun (f, _) -> f = idx - 1) mine with
      | Some (_, pos) -> Some (Value.to_float tuple.(pos))
      | None -> None
  in
  let f = match value i with Some x when i > 0 -> x | _ -> 1.0 in
  let g = match value j with Some x when j > 0 -> x | _ -> 1.0 in
  f *. g

(* Assemble the covariance triple from per-aggregate scalar totals. *)
let assemble t (totals : ((int * int) * float) list) =
  let n = t.dim in
  let c = ref 0.0 in
  let s = Util.Vec.create n in
  let q = Util.Mat.create n n in
  List.iter
    (fun ((i, j), v) ->
      if i = 0 && j = 0 then c := v
      else if i = 0 then Util.Vec.set s (j - 1) v
      else begin
        Util.Mat.set q (i - 1) (j - 1) v;
        Util.Mat.set q (j - 1) (i - 1) v
      end)
    totals;
  { Rings.Covariance.c = !c; s; q }
