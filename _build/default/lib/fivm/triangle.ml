(* Triangle counting under updates (paper references [36, 37]: "counting
   triangles under updates in worst-case optimal time").

   Maintains COUNT of R(a,b) |><| S(b,c) |><| T(c,a) — a CYCLIC query that
   no view tree covers — under single-tuple updates with Z-multiplicities.
   The delta of an update to R(a,b) is m * sum_c S(b,c) * T(c,a): an
   intersection of b's S-neighbours with a's reverse-T-neighbours, computed
   by iterating the smaller adjacency list and probing the other (the
   heavy/light flavour of the worst-case optimal maintenance algorithms,
   without their lazy rebalancing). *)

open Relational

(* adjacency with multiplicities: first attr -> (second attr -> mult) *)
type adj = (Value.t, (Value.t, int) Hashtbl.t) Hashtbl.t

let adj_create () : adj = Hashtbl.create 64

let adj_add (a : adj) x y m =
  let row =
    match Hashtbl.find_opt a x with
    | Some r -> r
    | None ->
        let r = Hashtbl.create 8 in
        Hashtbl.add a x r;
        r
  in
  let cur = Option.value ~default:0 (Hashtbl.find_opt row y) in
  let next = cur + m in
  if next = 0 then Hashtbl.remove row y else Hashtbl.replace row y next;
  if Hashtbl.length row = 0 then Hashtbl.remove a x

let adj_mult (a : adj) x y =
  match Hashtbl.find_opt a x with
  | None -> 0
  | Some row -> Option.value ~default:0 (Hashtbl.find_opt row y)

let adj_row (a : adj) x = Hashtbl.find_opt a x

type t = {
  mutable count : int; (* the maintained triangle count (with mults) *)
  r_fwd : adj; (* R: a -> b *)
  s_fwd : adj; (* S: b -> c *)
  s_bwd : adj; (* S: c -> b *)
  t_fwd : adj; (* T: c -> a *)
  t_bwd : adj; (* T: a -> c *)
  r_bwd : adj; (* R: b -> a *)
}

let create () =
  {
    count = 0;
    r_fwd = adj_create ();
    s_fwd = adj_create ();
    s_bwd = adj_create ();
    t_fwd = adj_create ();
    t_bwd = adj_create ();
    r_bwd = adj_create ();
  }

(* sum over the intersection of two adjacency rows of the product of
   multiplicities, iterating the smaller row *)
let intersect_sum row1 row2 =
  match (row1, row2) with
  | None, _ | _, None -> 0
  | Some r1, Some r2 ->
      let small, big = if Hashtbl.length r1 <= Hashtbl.length r2 then (r1, r2) else (r2, r1) in
      Hashtbl.fold
        (fun v m acc ->
          acc + (m * Option.value ~default:0 (Hashtbl.find_opt big v)))
        small 0

type edge = R | S | T

(* Apply one edge update with multiplicity [m]; O(min degree) per update. *)
let update (g : t) (which : edge) ~(x : Value.t) ~(y : Value.t) (m : int) =
  let delta =
    match which with
    | R ->
        (* Delta R(a,b): sum_c S(b,c) * T(c,a) *)
        intersect_sum (adj_row g.s_fwd y) (adj_row g.t_bwd x)
    | S ->
        (* Delta S(b,c): sum_a T(c,a) * R(a,b) *)
        intersect_sum (adj_row g.t_fwd y) (adj_row g.r_bwd x)
    | T ->
        (* Delta T(c,a): sum_b R(a,b) * S(b,c) *)
        intersect_sum (adj_row g.r_fwd y) (adj_row g.s_bwd x)
  in
  g.count <- g.count + (m * delta);
  match which with
  | R ->
      adj_add g.r_fwd x y m;
      adj_add g.r_bwd y x m
  | S ->
      adj_add g.s_fwd x y m;
      adj_add g.s_bwd y x m
  | T ->
      adj_add g.t_fwd x y m;
      adj_add g.t_bwd y x m

let count (g : t) = g.count

(* Reference: the current state's triangle count from scratch via the
   worst-case optimal join. *)
let recompute (g : t) =
  let rel name (a1, a2) (adj : adj) =
    let r =
      Relation.create name (Schema.make [ (a1, Value.TInt); (a2, Value.TInt) ])
    in
    Hashtbl.iter
      (fun x row ->
        Hashtbl.iter
          (fun y m ->
            for _ = 1 to abs m do
              Relation.append r [| x; y |]
            done)
          row)
      adj;
    r
  in
  Factorized.Wcoj.count
    [ rel "R" ("a", "b") g.r_fwd; rel "S" ("b", "c") g.s_fwd; rel "T" ("c", "a") g.t_fwd ]
