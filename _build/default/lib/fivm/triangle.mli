(** Triangle counting under updates ([36, 37]): maintains the count of the
    cyclic join R(a,b) |><| S(b,c) |><| T(c,a) under single-edge updates
    with Z-multiplicities, in O(min degree) per update via adjacency-list
    intersection. *)

open Relational

type t

type edge = R | S | T

val create : unit -> t
(** Empty graph state. *)

val update : t -> edge -> x:Value.t -> y:Value.t -> int -> unit
(** Apply one edge update (multiplicity +1 insert / -1 delete). *)

val count : t -> int
(** The maintained triangle count (with multiplicities). *)

val recompute : t -> int
(** From-scratch recount of the current state via {!Factorized.Wcoj}. *)
