(** Incremental maintenance of GROUP BY aggregates: the k-relation semiring
    as an F-IVM payload keeps [SUM(terms) GROUP BY attrs] fresh under tuple
    updates — the categorical (sparse one-hot) side of the maintained
    covariance matrix. *)

open Relational
module Spec = Aggregates.Spec

type t

val create : Database.t -> Spec.t -> t
(** Maintenance state over an initially EMPTY database with the given
    schemas. Raises on filtered aggregates and unknown attributes. *)

val apply : t -> Delta.update -> unit

val result : t -> Spec.result
(** The maintained grouped sums (zero groups dropped). *)

val recompute : t -> Spec.result
(** From-scratch recomputation over the current contents (test oracle). *)
