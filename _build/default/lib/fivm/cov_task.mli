(** The covariance-maintenance task shared by the IVM strategies: feature
    ownership (each numeric feature belongs to exactly one relation) and the
    per-relation lifts/factors for the (n+1)^2 covariance batch, with slot 0
    the intercept. *)

open Relational

type t = {
  features : string array;
  dim : int;
  owned : (string, (int * int) list) Hashtbl.t;
}

val make : Database.t -> features:string list -> t
(** Raises if a feature appears in no relation. *)

val owned_features : t -> string -> (int * int) list
(** (feature index, column position) pairs owned by the relation. *)

val lift_cov : t -> string -> Tuple.t -> Payload.Cov_dyn.t
(** Covariance-ring lift of a tuple: the sparse (1, x, x x^T) over its owned
    features. *)

val aggregate_pairs : t -> (int * int) array
(** All (i, j), 0 <= i <= j <= n, of the symmetric batch (0 = intercept). *)

val factor : t -> int * int -> string -> Tuple.t -> float
(** The scalar factor a tuple contributes to aggregate (i, j): the owned
    part of x_i * x_j with x_0 = 1. *)

val assemble : t -> ((int * int) * float) list -> Rings.Covariance.t
(** Rebuild the covariance triple from per-aggregate scalar totals. *)
