lib/fivm/cov_task.mli: Database Hashtbl Payload Relational Rings Tuple
