lib/fivm/grouped_view.ml: Aggregates Array Database Delta Factorized Float Hashtbl List Payload Predicate Relation Relational Schema Storage Tuple Value View_tree
