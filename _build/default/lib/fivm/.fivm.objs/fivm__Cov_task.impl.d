lib/fivm/cov_task.ml: Array Database Hashtbl List Option Payload Printf Relation Relational Rings Schema Tuple Util Value
