lib/fivm/triangle.ml: Factorized Hashtbl Option Relation Relational Schema Value
