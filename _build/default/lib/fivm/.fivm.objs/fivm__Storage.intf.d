lib/fivm/storage.mli: Database Delta Join_tree Keypack Relational Schema Tuple
