lib/fivm/storage.mli: Database Delta Join_tree Relational Schema Tuple
