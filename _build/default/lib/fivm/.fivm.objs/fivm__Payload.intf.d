lib/fivm/payload.mli: Rings
