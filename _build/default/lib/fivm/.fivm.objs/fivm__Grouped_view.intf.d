lib/fivm/grouped_view.mli: Aggregates Database Delta Relational
