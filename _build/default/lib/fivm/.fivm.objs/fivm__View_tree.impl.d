lib/fivm/view_tree.ml: Array Delta Join_tree List Payload Relation Relational Schema Storage Tuple
