lib/fivm/view_tree.ml: Array Delta Join_tree Keypack List Payload Relation Relational Schema Storage Tuple
