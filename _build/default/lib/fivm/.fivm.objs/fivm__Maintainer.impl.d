lib/fivm/maintainer.ml: Array Cov_task Database Delta List Obs Payload Relational Rings Storage View_tree
