lib/fivm/maintainer.ml: Array Cov_task Database Delta List Payload Relational Rings Storage View_tree
