lib/fivm/triangle.mli: Relational Value
