lib/fivm/delta.ml: Format Relational Tuple
