lib/fivm/delta.mli: Format Relational Tuple
