lib/fivm/maintainer.mli: Database Delta Relational Rings Storage
