lib/fivm/storage.ml: Array Database Delta Hashtbl Join_tree List Printf Relation Relational Schema Tuple
