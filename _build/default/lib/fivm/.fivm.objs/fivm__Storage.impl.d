lib/fivm/storage.ml: Array Database Delta Fun Hashtbl Join_tree Keypack List Printf Relation Relational Schema Tuple
