lib/fivm/view_tree.mli: Delta Payload Relational Storage Tuple
