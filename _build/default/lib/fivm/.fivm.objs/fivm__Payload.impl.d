lib/fivm/payload.ml: Rings
