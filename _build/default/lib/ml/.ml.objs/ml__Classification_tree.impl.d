lib/ml/classification_tree.ml: Aggregates Column Database Decision_tree Hashtbl Lazy List Lmfao Option Predicate Printf Relation Relational Schema Value
