lib/ml/classification_tree.ml: Aggregates Array Database Decision_tree Hashtbl Lazy List Lmfao Option Predicate Printf Relation Relational Schema Value
