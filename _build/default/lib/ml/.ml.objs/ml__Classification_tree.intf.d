lib/ml/classification_tree.mli: Aggregates Database Decision_tree Lmfao Predicate Relation Relational Value
