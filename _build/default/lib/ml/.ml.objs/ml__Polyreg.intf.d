lib/ml/polyreg.mli: Aggregates Database Lmfao Relation Relational Util
