lib/ml/fd.mli: Aggregates Database Relation Relational Value
