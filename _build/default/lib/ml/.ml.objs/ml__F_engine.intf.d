lib/ml/f_engine.mli: Database Relational Rings
