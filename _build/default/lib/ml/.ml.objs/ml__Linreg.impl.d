lib/ml/linreg.ml: Aggregates Array Column Database Fun Hashtbl Lazy List Lmfao Mat Moment Obs Printf Relation Relational Schema Stdlib String Timing Util Value Vec
