lib/ml/linreg.ml: Aggregates Array Database Fun Hashtbl List Lmfao Mat Moment Printf Relation Relational Schema Stdlib String Timing Util Value Vec
