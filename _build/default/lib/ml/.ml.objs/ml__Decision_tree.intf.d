lib/ml/decision_tree.mli: Aggregates Database Format Lmfao Predicate Relation Relational Value
