lib/ml/inequality.mli:
