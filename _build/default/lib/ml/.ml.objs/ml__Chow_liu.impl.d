lib/ml/chow_liu.ml: Aggregates Database Hashtbl List Lmfao Printf Relational
