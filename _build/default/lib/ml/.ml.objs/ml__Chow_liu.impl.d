lib/ml/chow_liu.ml: Aggregates Database Hashtbl Lazy List Lmfao Printf Relational
