lib/ml/pca.ml: Array List Mat Prng Rings Stdlib Util Vec
