lib/ml/svm.ml: Array Stdlib
