lib/ml/kmeans.ml: Aggregates Array Column Database Hashtbl List Lmfao Option Relation Relational Schema Stdlib Util Value
