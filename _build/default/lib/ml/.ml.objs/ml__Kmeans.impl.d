lib/ml/kmeans.ml: Aggregates Array Database Hashtbl List Lmfao Option Relation Relational Schema Stdlib Util Value
