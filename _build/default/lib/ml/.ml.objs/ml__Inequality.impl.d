lib/ml/inequality.ml: Array
