lib/ml/f_engine.ml: Array Database Factorized Fivm Fun Hashtbl List Relational Rings Stdlib Util Value
