lib/ml/f_engine.ml: Array Database Factorized Fivm Fun Hashtbl List Obs Relational Rings Stdlib Util Value
