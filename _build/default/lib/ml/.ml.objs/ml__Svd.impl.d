lib/ml/svd.ml: Array Float Fun List Mat Moment Stdlib Util
