lib/ml/moment.mli: Aggregates Baseline Format Hashtbl Mat Relational Util Value
