lib/ml/svm.mli:
