lib/ml/fd.ml: Aggregates Array Database Hashtbl List Option Relation Relational Schema Value
