lib/ml/kmeans.mli: Database Lmfao Relation Relational
