lib/ml/qr.ml: Array Float Fun List Mat Moment Stdlib Util
