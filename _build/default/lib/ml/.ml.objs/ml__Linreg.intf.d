lib/ml/linreg.mli: Aggregates Database Lmfao Moment Relation Relational Util Value Vec
