lib/ml/model_selection.mli: Moment Util Vec
