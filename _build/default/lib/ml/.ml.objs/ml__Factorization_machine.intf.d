lib/ml/factorization_machine.mli:
