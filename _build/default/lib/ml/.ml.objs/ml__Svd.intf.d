lib/ml/svd.mli: Mat Moment Util
