lib/ml/factorization_machine.ml: Array Stdlib Util
