lib/ml/pca.mli: Mat Rings Util Vec
