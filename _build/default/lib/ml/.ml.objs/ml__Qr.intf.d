lib/ml/qr.mli: Mat Moment Util
