lib/ml/decision_tree.ml: Aggregates Column Database Format Hashtbl Lazy List Lmfao Option Predicate Printf Relation Relational Schema Stdlib String Value
