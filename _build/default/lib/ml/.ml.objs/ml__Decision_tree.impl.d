lib/ml/decision_tree.ml: Aggregates Array Database Format Hashtbl Lazy List Lmfao Option Predicate Printf Relation Relational Schema Stdlib String Value
