lib/ml/model_selection.ml: Array Fun List Mat Moment Option Stdlib Util Vec
