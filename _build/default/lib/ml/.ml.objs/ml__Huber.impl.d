lib/ml/huber.ml: Array Float Stdlib
