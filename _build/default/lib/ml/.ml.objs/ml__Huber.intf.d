lib/ml/huber.mli:
