lib/ml/polyreg.ml: Aggregates Array Column Database Hashtbl Lazy List Lmfao Mat Option Printf Relation Relational Schema Stdlib String Util Vec
