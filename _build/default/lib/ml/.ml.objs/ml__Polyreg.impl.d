lib/ml/polyreg.ml: Aggregates Array Database Hashtbl Lazy List Lmfao Mat Option Printf Relation Relational Schema Stdlib String Util Value Vec
