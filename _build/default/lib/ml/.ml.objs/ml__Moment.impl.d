lib/ml/moment.ml: Aggregates Array Baseline Format Hashtbl List Mat Printf Relational Util Value
