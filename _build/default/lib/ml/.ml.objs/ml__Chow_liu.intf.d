lib/ml/chow_liu.mli: Aggregates Database Lmfao Relational
