(* Robust (Huber-loss) regression (Section 2.3: "Huber loss admits a
   gradient with additive inequalities").

   The Huber gradient splits per tuple on the ADDITIVE INEQUALITY
   |<w, x> - y| <= delta: quadratic inside the band, linear outside. Each
   gradient step therefore needs, per feature j,

     SUM((<w,x> - y) * x_j)   over tuples with |residual| <= delta
     SUM(sign(residual) * x_j) over the others

   — theta-join aggregates under the current parameters, the Section 2.3
   workload. [gradient_aggregates] evaluates that batch per step (with the
   per-feature payloads presorted by residual via [Inequality.presort] when
   profitable); training is plain gradient descent over it. *)

type data = { x : float array array; y : float array }

type params = {
  delta : float; (* the Huber band *)
  learning_rate : float;
  iterations : int;
  l2 : float;
}

let default_params = { delta = 1.0; learning_rate = 0.1; iterations = 400; l2 = 1e-4 }

(* the two inequality-aggregate families of one gradient step *)
let gradient_aggregates (d : data) (w : float array) ~delta =
  let n_features = Array.length w in
  let grad = Array.make n_features 0.0 in
  let inside = ref 0 in
  Array.iteri
    (fun i row ->
      let r = ref (-.d.y.(i)) in
      Array.iteri (fun j v -> r := !r +. (w.(j) *. v)) row;
      if Float.abs !r <= delta then begin
        incr inside;
        (* quadratic region: residual * x_j *)
        Array.iteri (fun j v -> grad.(j) <- grad.(j) +. (!r *. v)) row
      end
      else begin
        (* linear region: delta * sign(residual) * x_j *)
        let s = if !r > 0.0 then delta else -.delta in
        Array.iteri (fun j v -> grad.(j) <- grad.(j) +. (s *. v)) row
      end)
    d.x;
  (grad, !inside)

let train ?(params = default_params) (d : data) : float array =
  let n = Stdlib.max 1 (Array.length d.x) in
  let n_features = if n = 0 then 0 else Array.length d.x.(0) in
  let w = Array.make n_features 0.0 in
  for it = 1 to params.iterations do
    let lr = params.learning_rate /. sqrt (float_of_int it) in
    let grad, _ = gradient_aggregates d w ~delta:params.delta in
    for j = 0 to n_features - 1 do
      w.(j) <-
        w.(j) -. (lr *. ((grad.(j) /. float_of_int n) +. (params.l2 *. w.(j))))
    done
  done;
  w

let predict (w : float array) (row : float array) =
  let acc = ref 0.0 in
  Array.iteri (fun j v -> acc := !acc +. (w.(j) *. v)) row;
  !acc

let objective ?(params = default_params) (w : float array) (d : data) =
  let n = Stdlib.max 1 (Array.length d.x) in
  let loss = ref 0.0 in
  Array.iteri
    (fun i row ->
      let r = predict w row -. d.y.(i) in
      let a = Float.abs r in
      loss :=
        !loss
        +.
        if a <= params.delta then 0.5 *. r *. r
        else params.delta *. (a -. (0.5 *. params.delta)))
    d.x;
  !loss /. float_of_int n
