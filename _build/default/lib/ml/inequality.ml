(* Aggregates with additive inequality conditions (Section 2.3).

   SUM(f) WHERE e1 + e2 > c over a two-sided decomposition: when the
   additive terms split per side of a join (or per relation), the classical
   engine iterates the whole data matrix and tests the inequality per tuple.
   The better algorithm sorts one side and sweeps the other with prefix
   sums, needing O((n + m) log(n + m)) instead of O(n * m) for the
   cross-product case — the paper's "polynomially less time".

   This module implements the two-sided primitive used by the SVM and
   k-means sub-gradient computations, plus the naive reference. *)

(* Inputs: left side pairs (a_i, u_i) and right side pairs (b_j, v_j).
   Computes  sum_{i,j : a_i + b_j > c}  u_i * v_j
   i.e. the inequality-joined sum of products of per-side payloads.
   With u = v = 1 it counts the qualifying pairs. *)
let naive_sum_pairs left right ~threshold =
  Array.fold_left
    (fun acc (a, u) ->
      Array.fold_left
        (fun acc (b, v) -> if a +. b > threshold then acc +. (u *. v) else acc)
        acc right)
    0.0 left

let fast_sum_pairs left right ~threshold =
  (* sort right by key; suffix sums of payloads; binary search per left *)
  let right = Array.copy right in
  Array.sort (fun (b1, _) (b2, _) -> compare (b1 : float) b2) right;
  let m = Array.length right in
  let suffix = Array.make (m + 1) 0.0 in
  for j = m - 1 downto 0 do
    suffix.(j) <- suffix.(j + 1) +. snd right.(j)
  done;
  (* first index with b > c - a *)
  let first_greater bound =
    let lo = ref 0 and hi = ref m in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if fst right.(mid) > bound then hi := mid else lo := mid + 1
    done;
    !lo
  in
  Array.fold_left
    (fun acc (a, u) -> acc +. (u *. suffix.(first_greater (threshold -. a))))
    0.0 left

(* Count of qualifying pairs. *)
let count_pairs left right ~threshold =
  fast_sum_pairs
    (Array.map (fun a -> (a, 1.0)) left)
    (Array.map (fun b -> (b, 1.0)) right)
    ~threshold

(* Row-level inequality selection over a single array (the degenerate
   one-sided case): sum of payloads where key > threshold, via sort+suffix
   when many thresholds are probed against the same data. *)
type sorted = { keys : float array; suffix : float array }

let presort data =
  let data = Array.copy data in
  Array.sort (fun (a, _) (b, _) -> compare (a : float) b) data;
  let n = Array.length data in
  let suffix = Array.make (n + 1) 0.0 in
  for i = n - 1 downto 0 do
    suffix.(i) <- suffix.(i + 1) +. snd data.(i)
  done;
  { keys = Array.map fst data; suffix }

let sum_above (s : sorted) threshold =
  let n = Array.length s.keys in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if s.keys.(mid) > threshold then hi := mid else lo := mid + 1
  done;
  s.suffix.(!lo)
