(* CART regression trees trained from aggregate batches (Section 2.2).

   Every split decision needs, per candidate (feature, condition), the
   response variance on each side — i.e. the triple SUM(y^2), SUM(y),
   SUM(1) under the node's path filter conjoined with the condition. These
   are exactly the filtered aggregates of the decision-node batch; one batch
   per tree node answers ALL candidate splits at once, and the engine never
   materialises the data matrix. Thresholds for continuous features come
   from the value distribution; categorical features use one-vs-rest splits
   read off a single GROUP BY triple. *)

open Relational
module Spec = Aggregates.Spec
module Feature = Aggregates.Feature

type split =
  | Threshold of string * float (* goes left when attr >= threshold *)
  | Category of string * Value.t (* goes left when attr = value *)

type tree =
  | Leaf of { prediction : float; count : float }
  | Node of { split : split; left : tree; right : tree; count : float }

type params = { max_depth : int; min_samples : float; min_gain : float }

let default_params = { max_depth = 4; min_samples = 10.0; min_gain = 1e-6 }

(* sum of squared errors around the mean, from the (count, sum, sum2) triple *)
let sse ~count ~sum ~sum2 =
  if count <= 0.0 then 0.0 else sum2 -. (sum *. sum /. count)

type evaluator = Spec.t list -> (string -> Spec.result)

(* the per-node batch: total triple, one filtered triple per continuous
   threshold, one grouped triple per categorical feature *)
let node_specs ~(path : Predicate.t) (f : Feature.t)
    (thresholds : (string * float list) list) : Spec.t list =
  let y = Option.get f.response in
  let with_path extra =
    match (path, extra) with
    | Predicate.True, e -> e
    | p, Predicate.True -> p
    | p, e -> Predicate.And (p, e)
  in
  let triple ~prefix ~filter ~group_by =
    [
      Spec.make ~filter ~id:(prefix ^ "#n") ~terms:[] ~group_by ();
      Spec.make ~filter ~id:(prefix ^ "#s") ~terms:[ (y, 1) ] ~group_by ();
      Spec.make ~filter ~id:(prefix ^ "#s2") ~terms:[ (y, 2) ] ~group_by ();
    ]
  in
  triple ~prefix:"total" ~filter:(with_path Predicate.True) ~group_by:[]
  @ List.concat_map
      (fun x ->
        let ths = Option.value ~default:[] (List.assoc_opt x thresholds) in
        List.concat
          (List.mapi
             (fun j c ->
               triple
                 ~prefix:(Printf.sprintf "ge|%s|%d" x j)
                 ~filter:(with_path (Predicate.Ge (x, Value.Float c)))
                 ~group_by:[])
             ths))
      f.continuous
  @ List.concat_map
      (fun k ->
        triple ~prefix:(Printf.sprintf "by|%s" k)
          ~filter:(with_path Predicate.True) ~group_by:[ k ])
      f.categorical

let scalar lookup id = Spec.scalar_result (lookup id)

let rec grow ~(params : params) ~(evaluate : evaluator) ~(path : Predicate.t)
    (f : Feature.t) (thresholds : (string * float list) list) depth : tree =
  let lookup = evaluate (node_specs ~path f thresholds) in
  let n = scalar lookup "total#n" in
  let s = scalar lookup "total#s" in
  let s2 = scalar lookup "total#s2" in
  let prediction = if n > 0.0 then s /. n else 0.0 in
  let total_sse = sse ~count:n ~sum:s ~sum2:s2 in
  let leaf () = Leaf { prediction; count = n } in
  if depth >= params.max_depth || n < params.min_samples then leaf ()
  else begin
    (* candidate splits: continuous thresholds... *)
    let candidates = ref [] in
    List.iter
      (fun x ->
        let ths = Option.value ~default:[] (List.assoc_opt x thresholds) in
        List.iteri
          (fun j c ->
            let prefix = Printf.sprintf "ge|%s|%d" x j in
            let ln = scalar lookup (prefix ^ "#n") in
            let ls = scalar lookup (prefix ^ "#s") in
            let ls2 = scalar lookup (prefix ^ "#s2") in
            let rn = n -. ln and rs = s -. ls and rs2 = s2 -. ls2 in
            if ln > 0.0 && rn > 0.0 then begin
              let gain =
                total_sse -. sse ~count:ln ~sum:ls ~sum2:ls2
                -. sse ~count:rn ~sum:rs ~sum2:rs2
              in
              candidates := (gain, Threshold (x, c), (ln, ls, ls2), (rn, rs, rs2)) :: !candidates
            end)
          ths)
      f.continuous;
    (* ...and categorical one-vs-rest splits from the grouped triples *)
    List.iter
      (fun k ->
        let prefix = Printf.sprintf "by|%s" k in
        let counts = lookup (prefix ^ "#n") in
        let sums = lookup (prefix ^ "#s") in
        let sums2 = lookup (prefix ^ "#s2") in
        List.iter
          (fun (assignment, ln) ->
            match assignment with
            | [ (_, v) ] ->
                let ls = Spec.lookup sums assignment in
                let ls2 = Spec.lookup sums2 assignment in
                let rn = n -. ln and rs = s -. ls and rs2 = s2 -. ls2 in
                if ln > 0.0 && rn > 0.0 then begin
                  let gain =
                    total_sse -. sse ~count:ln ~sum:ls ~sum2:ls2
                    -. sse ~count:rn ~sum:rs ~sum2:rs2
                  in
                  candidates :=
                    (gain, Category (k, v), (ln, ls, ls2), (rn, rs, rs2)) :: !candidates
                end
            | _ -> ())
          counts)
      f.categorical;
    (* deterministic best: highest gain, ties by split description *)
    let describe = function
      | Threshold (x, c) -> Printf.sprintf "t|%s|%g" x c
      | Category (k, v) -> Printf.sprintf "c|%s|%s" k (Value.to_string v)
    in
    match
      List.sort
        (fun (g1, s1, _, _) (g2, s2, _, _) ->
          match compare g2 g1 with 0 -> compare (describe s1) (describe s2) | c -> c)
        !candidates
    with
    | (gain, split, _, _) :: _ when gain > params.min_gain ->
        let left_pred, right_pred =
          match split with
          | Threshold (x, c) ->
              (Predicate.Ge (x, Value.Float c), Predicate.Lt (x, Value.Float c))
          | Category (k, v) -> (Predicate.Eq (k, v), Predicate.Not (Predicate.Eq (k, v)))
        in
        let extend p =
          match path with Predicate.True -> p | _ -> Predicate.And (path, p)
        in
        let left =
          grow ~params ~evaluate ~path:(extend left_pred) f thresholds (depth + 1)
        in
        let right =
          grow ~params ~evaluate ~path:(extend right_pred) f thresholds (depth + 1)
        in
        Node { split; left; right; count = n }
    | _ -> leaf ()
  end

let thresholds_of_db (db : Database.t) (f : Feature.t) =
  List.map
    (fun x -> (x, Aggregates.Batch.thresholds_for db x f.thresholds_per_feature))
    f.continuous

(* Structure-aware training: one LMFAO batch per tree node. *)
let train ?(params = default_params) ?(engine_options = Lmfao.Engine.default_options)
    (db : Database.t) (f : Feature.t) : tree =
  let thresholds = thresholds_of_db db f in
  let evaluate specs =
    let batch = { Aggregates.Batch.name = "tree-node"; aggregates = specs } in
    let table = Lazy.force (Lmfao.Engine.eval ~options:engine_options db batch).table in
    fun id ->
      match Hashtbl.find_opt table id with
      | Some r -> r
      | None -> invalid_arg ("Decision_tree: missing aggregate " ^ id)
  in
  grow ~params ~evaluate ~path:Predicate.True f thresholds 0

(* Structure-agnostic training over a materialised data matrix, same specs
   evaluated by scans — the reference implementation. *)
let train_flat ?(params = default_params) (join : Relation.t) (f : Feature.t)
    ~(thresholds : (string * float list) list) : tree =
  let evaluate specs =
    let results =
      List.map (fun spec -> (spec.Spec.id, Spec.eval_flat join spec)) specs
    in
    fun id ->
      match List.assoc_opt id results with
      | Some r -> r
      | None -> invalid_arg ("Decision_tree: missing aggregate " ^ id)
  in
  grow ~params ~evaluate ~path:Predicate.True f thresholds 0

let rec predict tree (get : string -> Value.t) =
  match tree with
  | Leaf { prediction; _ } -> prediction
  | Node { split; left; right; _ } ->
      let goes_left =
        match split with
        | Threshold (x, c) -> Value.to_float (get x) >= c
        | Category (k, v) -> Value.equal (get k) v
      in
      predict (if goes_left then left else right) get

let rmse_on tree (rel : Relation.t) ~response =
  let schema = Relation.schema rel in
  let n = Relation.cardinality rel in
  if n = 0 then 0.0
  else begin
    let col_of = Hashtbl.create 16 in
    List.iter
      (fun (a : Schema.attr) ->
        Hashtbl.replace col_of a.name
          (Relation.column rel (Schema.position schema a.name)))
      (Schema.attrs schema);
    let row = ref 0 in
    let get a = Column.get (Hashtbl.find col_of a) !row in
    let se = ref 0.0 in
    for i = 0 to n - 1 do
      row := i;
      let err = predict tree get -. Value.to_float (get response) in
      se := !se +. (err *. err)
    done;
    sqrt (!se /. float_of_int n)
  end

let rec depth = function
  | Leaf _ -> 0
  | Node { left; right; _ } -> 1 + Stdlib.max (depth left) (depth right)

let rec size = function
  | Leaf _ -> 1
  | Node { left; right; _ } -> 1 + size left + size right

let rec pp ?(indent = 0) ppf tree =
  let pad = String.make (indent * 2) ' ' in
  match tree with
  | Leaf { prediction; count } ->
      Format.fprintf ppf "%spredict %.3f (n=%g)@\n" pad prediction count
  | Node { split; left; right; count } ->
      (match split with
      | Threshold (x, c) -> Format.fprintf ppf "%s%s >= %g? (n=%g)@\n" pad x c count
      | Category (k, v) ->
          Format.fprintf ppf "%s%s = %s? (n=%g)@\n" pad k (Value.to_string v) count);
      pp ~indent:(indent + 1) ppf left;
      pp ~indent:(indent + 1) ppf right
