(** Model selection over one covariance matrix (Section 1.5): any feature
    subset's ridge model is a small solve on a submatrix of the moments —
    no new data pass — so hundreds of candidate models cost microseconds
    each. Candidates are scored by moments-derived training MSE with a
    BIC-style size penalty. *)

open Util

type candidate = {
  columns : string list;
  weights : Vec.t;
  mse : float;
  score : float;  (** penalised; lower is better *)
}

val evaluate_subset : Moment.t -> ridge:float -> int array -> candidate
(** Solve and score the model over the given moment-matrix columns. *)

val forward_selection :
  ?ridge:float -> ?max_features:int -> Moment.t -> candidate * candidate list
(** Greedy forward selection; returns the best candidate and the per-round
    trail. *)

val best_of : Moment.t -> ridge:float -> string list list -> candidate
(** Best among explicitly named column subsets. *)
