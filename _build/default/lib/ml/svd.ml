(* Singular value decomposition of relational data (Section 2.1: "QR and
   SVD decompositions [74]").

   For the data matrix X (never materialised), the right singular vectors
   and singular values come from the eigendecomposition of X^T X — i.e. of
   the moment matrix delivered by the covariance aggregate batch. The full
   symmetric eigendecomposition uses the cyclic Jacobi rotation method,
   which is simple, robust, and exactly what a small-dimensional
   sufficient-statistics matrix calls for. Left singular vectors are
   derived row-by-row on demand (u = X v / sigma), like Q in [Qr]. *)

open Util

(* Cyclic Jacobi eigendecomposition of a symmetric matrix: returns
   (eigenvalues, eigenvectors as columns), eigenvalues descending. *)
let jacobi_eigen ?(sweeps = 50) ?(eps = 1e-12) (a : Mat.t) : float array * Mat.t =
  let n = Mat.rows a in
  if n <> Mat.cols a then invalid_arg "Svd.jacobi_eigen: not square";
  let a = Mat.copy a in
  let v = Mat.identity n in
  let off_diag () =
    let s = ref 0.0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        s := !s +. (2.0 *. Mat.get a i j *. Mat.get a i j)
      done
    done;
    sqrt !s
  in
  let scale = Stdlib.max 1e-300 (Mat.frobenius a) in
  (try
     for _ = 1 to sweeps do
       if off_diag () /. scale < eps then raise Exit;
       for p = 0 to n - 2 do
         for q = p + 1 to n - 1 do
           let apq = Mat.get a p q in
           if Float.abs apq > 1e-300 then begin
             let app = Mat.get a p p and aqq = Mat.get a q q in
             let theta = (aqq -. app) /. (2.0 *. apq) in
             let t =
               let sign = if theta >= 0.0 then 1.0 else -1.0 in
               sign /. (Float.abs theta +. sqrt ((theta *. theta) +. 1.0))
             in
             let c = 1.0 /. sqrt ((t *. t) +. 1.0) in
             let s = t *. c in
             (* rotate rows/cols p and q of a *)
             for k = 0 to n - 1 do
               let akp = Mat.get a k p and akq = Mat.get a k q in
               Mat.set a k p ((c *. akp) -. (s *. akq));
               Mat.set a k q ((s *. akp) +. (c *. akq))
             done;
             for k = 0 to n - 1 do
               let apk = Mat.get a p k and aqk = Mat.get a q k in
               Mat.set a p k ((c *. apk) -. (s *. aqk));
               Mat.set a q k ((s *. apk) +. (c *. aqk))
             done;
             (* accumulate the rotation into v *)
             for k = 0 to n - 1 do
               let vkp = Mat.get v k p and vkq = Mat.get v k q in
               Mat.set v k p ((c *. vkp) -. (s *. vkq));
               Mat.set v k q ((s *. vkp) +. (c *. vkq))
             done
           end
         done
       done
     done
   with Exit -> ());
  (* sort by eigenvalue, descending *)
  let order = Array.init n Fun.id in
  Array.sort (fun i j -> compare (Mat.get a j j) (Mat.get a i i)) order;
  let eigenvalues = Array.map (fun i -> Mat.get a i i) order in
  let vectors = Mat.init n n (fun r c -> Mat.get v r order.(c)) in
  (eigenvalues, vectors)

type t = {
  singular_values : float array; (* descending *)
  right_vectors : Mat.t; (* V: columns are right singular vectors *)
}

(* SVD of the (implicit) data matrix from its Gram matrix X^T X:
   sigma_i = sqrt(lambda_i), V = eigenvectors. *)
let of_gram (gram : Mat.t) : t =
  let eigenvalues, right_vectors = jacobi_eigen gram in
  {
    singular_values = Array.map (fun l -> sqrt (Stdlib.max 0.0 l)) eigenvalues;
    right_vectors;
  }

(* SVD over a moment matrix's feature columns. *)
let of_moment (m : Moment.t) : t * string array =
  let keep =
    Array.of_list
      (List.filter (fun i -> Some i <> m.response_col) (List.init (Moment.width m) Fun.id))
  in
  let gram =
    Mat.init (Array.length keep) (Array.length keep) (fun i j ->
        Mat.get m.matrix keep.(i) keep.(j))
  in
  (of_gram gram, Array.map (fun i -> m.columns.(i)) keep)

(* the left singular row of a data row: u = V^T x / sigma (components with
   sigma = 0 are set to 0) *)
let u_row (svd : t) (x : float array) =
  let n = Array.length svd.singular_values in
  Array.init n (fun i ->
      if svd.singular_values.(i) <= 1e-12 then 0.0
      else begin
        let acc = ref 0.0 in
        for k = 0 to n - 1 do
          acc := !acc +. (Mat.get svd.right_vectors k i *. x.(k))
        done;
        !acc /. svd.singular_values.(i)
      end)

(* rank-k reconstruction error of the Gram matrix: ||G - V_k S_k^2 V_k^T||_F *)
let gram_reconstruction_error (svd : t) (gram : Mat.t) ~k =
  let n = Mat.rows gram in
  let approx = Mat.create n n in
  for c = 0 to Stdlib.min k (Array.length svd.singular_values) - 1 do
    let v = Array.init n (fun r -> Mat.get svd.right_vectors r c) in
    let s2 = svd.singular_values.(c) *. svd.singular_values.(c) in
    Mat.ger ~alpha:s2 v v approx
  done;
  Mat.frobenius (Mat.sub gram approx)
