(* Ridge polynomial regression of degree 2 over continuous features
   (Section 2.1: "Similar aggregates can be derived for polynomial
   regression models").

   The quadratic basis phi(x) = (1, x_i ..., x_i * x_j ...) needs the moment
   matrix E[phi phi^T], whose entries are SUM-PRODUCT aggregates of degree
   up to 4 — still plain [Spec] terms (attribute powers), so the same LMFAO
   engine computes the whole batch over the join without materialising it:
   products across relations factorise through the join tree. *)

open Relational
module Spec = Aggregates.Spec
open Util

(* basis monomials over features xs: exponent vectors of total degree <= 2 *)
type monomial = (string * int) list (* sorted, powers >= 1; [] = 1 *)

let basis (features : string list) : monomial list =
  let singles = List.map (fun x -> [ (x, 1) ]) features in
  let rec pairs = function
    | [] -> []
    | x :: rest ->
        [ (x, 2) ]
        :: List.map (fun y -> List.sort compare [ (x, 1); (y, 1) ]) rest
        @ pairs rest
  in
  ([] :: singles) @ pairs features

let monomial_name (m : monomial) =
  match m with
  | [] -> "1"
  | ts -> String.concat "*" (List.map (fun (a, p) -> Printf.sprintf "%s^%d" a p) ts)

(* product of two monomials: merge exponents *)
let mono_mul (a : monomial) (b : monomial) : monomial =
  let table = Hashtbl.create 8 in
  List.iter
    (fun (x, p) ->
      Hashtbl.replace table x (p + Option.value ~default:0 (Hashtbl.find_opt table x)))
    (a @ b);
  List.sort compare (Hashtbl.fold (fun x p acc -> (x, p) :: acc) table [])

(* the aggregate batch: SUM of every pairwise product of basis monomials
   (and of each monomial times the response) *)
let batch_for (features : string list) ~(response : string) =
  let b = basis features in
  let specs = Hashtbl.create 64 in
  let add terms =
    let id = monomial_name terms in
    if not (Hashtbl.mem specs id) then
      Hashtbl.replace specs id (Spec.make ~id ~terms ~group_by:[] ())
  in
  List.iteri
    (fun i mi ->
      List.iteri
        (fun j mj -> if j >= i then add (mono_mul mi mj))
        b;
      add (mono_mul mi [ (response, 1) ]))
    b;
  add [ (response, 2) ];
  ( { Aggregates.Batch.name = "polyreg";
      aggregates = Hashtbl.fold (fun _ s acc -> s :: acc) specs [] },
    b )

type model = {
  basis_monomials : monomial list;
  weights : Vec.t;
  response : string;
}

let train ?(ridge = 1e-2) ?(engine_options = Lmfao.Engine.default_options)
    (db : Database.t) ~(features : string list) ~(response : string) : model =
  let batch, b = batch_for features ~response in
  let table = Lazy.force (Lmfao.Engine.eval ~options:engine_options db batch).table in
  let scalar terms =
    match Hashtbl.find_opt table (monomial_name terms) with
    | Some r -> Spec.scalar_result r
    | None -> invalid_arg ("Polyreg: missing aggregate " ^ monomial_name terms)
  in
  let dim = List.length b in
  let n = Stdlib.max 1.0 (scalar []) in
  let barr = Array.of_list b in
  let a =
    Mat.init dim dim (fun i j ->
        (scalar (mono_mul barr.(i) barr.(j)) /. n) +. if i = j then ridge else 0.0)
  in
  let rhs =
    Array.map (fun m -> scalar (mono_mul m [ (response, 1) ]) /. n) barr
  in
  { basis_monomials = b; weights = Mat.solve_spd a rhs; response }

let eval_monomial (m : monomial) (get : string -> float) =
  List.fold_left
    (fun acc (x, p) ->
      let v = get x in
      let rec pow acc k = if k = 0 then acc else pow (acc *. v) (k - 1) in
      pow acc p)
    1.0 m

let predict (model : model) (get : string -> float) =
  List.fold_left
    (fun (acc, i) m -> (acc +. (model.weights.(i) *. eval_monomial m get), i + 1))
    (0.0, 0) model.basis_monomials
  |> fst

let rmse_on (model : model) (rel : Relation.t) =
  let schema = Relation.schema rel in
  let n = Relation.cardinality rel in
  if n = 0 then 0.0
  else begin
    let col_of = Hashtbl.create 16 in
    List.iter
      (fun (a : Schema.attr) ->
        Hashtbl.replace col_of a.name
          (Relation.column rel (Schema.position schema a.name)))
      (Schema.attrs schema);
    let row = ref 0 in
    let get a = Column.float_at (Hashtbl.find col_of a) !row in
    let se = ref 0.0 in
    for i = 0 to n - 1 do
      row := i;
      let err = predict model get -. get model.response in
      se := !se +. (err *. err)
    done;
    sqrt (!se /. float_of_int n)
  end
