(* QR decomposition of (normalised) relational data (Section 2.1: "QR and
   SVD decompositions [74]").

   The R factor of X = QR satisfies X^T X = R^T R, so R is the transpose of
   the Cholesky factor of the moment matrix — computable from the covariance
   aggregate batch alone, without materialising X. Q itself is only needed
   row-by-row (Q = X R^{-1}) and never as a stored matrix. *)

open Util

(* Upper-triangular R with X^T X = R^T R, from the Gram matrix. *)
let r_of_gram (gram : Mat.t) : Mat.t = Mat.transpose (Mat.cholesky gram)

(* R over a moment matrix's feature columns (response excluded if present).
   One-hot moment matrices are rank-deficient (indicator blocks sum to the
   intercept column), so [ridge] adds lambda*I before factorising — the
   regularised R used by ridge-regression solvers. *)
let r_of_moment ?(ridge = 0.0) (m : Moment.t) : Mat.t * string array =
  let keep =
    Array.of_list
      (List.filter
         (fun i -> Some i <> m.response_col)
         (List.init (Moment.width m) Fun.id))
  in
  (* [ridge] is relative to the largest diagonal entry, so it is meaningful
     across feature magnitudes *)
  let diag_scale =
    Array.fold_left
      (fun acc i -> Stdlib.max acc (Float.abs (Mat.get m.matrix i i)))
      1.0 keep
  in
  let jitter = ridge *. diag_scale in
  let gram =
    Mat.init (Array.length keep) (Array.length keep) (fun i j ->
        (if i = j then jitter else 0.0) +. Mat.get m.matrix keep.(i) keep.(j))
  in
  (r_of_gram gram, Array.map (fun i -> m.columns.(i)) keep)

(* Solve R x = b by back substitution (R upper triangular). *)
let solve_r (r : Mat.t) (b : float array) =
  let n = Mat.rows r in
  let x = Array.make n 0.0 in
  for i = n - 1 downto 0 do
    let s = ref b.(i) in
    for k = i + 1 to n - 1 do
      s := !s -. (Mat.get r i k *. x.(k))
    done;
    x.(i) <- !s /. Mat.get r i i
  done;
  x

(* The Q-row of a data row: q = (R^T)^{-1} x, i.e. forward substitution. *)
let q_row (r : Mat.t) (x : float array) =
  let n = Mat.rows r in
  let q = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let s = ref x.(i) in
    for k = 0 to i - 1 do
      s := !s -. (Mat.get r k i *. q.(k))
    done;
    q.(i) <- !s /. Mat.get r i i
  done;
  q

let is_upper_triangular ?(eps = 1e-9) (r : Mat.t) =
  let ok = ref true in
  for i = 0 to Mat.rows r - 1 do
    for j = 0 to i - 1 do
      if Float.abs (Mat.get r i j) > eps then ok := false
    done
  done;
  !ok
