(** Principal component analysis from the covariance triple (Section 2.1):
    the centred covariance matrix is assembled from (c, s, Q) without a data
    pass; components come from power iteration with deflation. *)

open Util
module Cov = Rings.Covariance

val centred_covariance : Cov.t -> Mat.t
(** Q/N - (s/N)(s/N)^T. *)

type component = { eigenvalue : float; vector : Vec.t }

val components : ?k:int -> ?iters:int -> Cov.t -> component list
(** Top [k] (default 2) principal components. *)

val explained_variance : Cov.t -> component list -> float
(** Fraction of total variance the components capture. *)

val project : component list -> float array -> float array
