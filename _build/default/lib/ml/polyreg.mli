(** Degree-2 ridge polynomial regression over continuous features (Section
    2.1): the quadratic basis's moment matrix consists of SUM-PRODUCT
    aggregates of degree up to 4 — still plain [Spec] terms, so the same
    LMFAO engine computes the batch over the join without materialising
    it. *)

open Relational

type monomial = (string * int) list
(** Sorted (attribute, power) products; [] is the constant 1. *)

val basis : string list -> monomial list
(** All monomials of total degree <= 2 over the features. *)

val monomial_name : monomial -> string
val mono_mul : monomial -> monomial -> monomial

val batch_for : string list -> response:string -> Aggregates.Batch.t * monomial list
(** The deduplicated aggregate batch covering every basis-pair product and
    basis-response product. *)

type model = { basis_monomials : monomial list; weights : Util.Vec.t; response : string }

val train :
  ?ridge:float ->
  ?engine_options:Lmfao.Engine.options ->
  Database.t ->
  features:string list ->
  response:string ->
  model

val predict : model -> (string -> float) -> float
val rmse_on : model -> Relation.t -> float
