(* Degree-2 factorisation machines (Section 2.1's model list; [6] derives
   their aggregates).

   Model:  y^(x) = w0 + sum_i w_i x_i + sum_{i<j} <v_i, v_j> x_i x_j
   with rank-r factor vectors v_i. The pairwise term rewrites as
   0.5 * sum_f [ (sum_i v_if x_i)^2 - sum_i v_if^2 x_i^2 ], giving O(n r)
   evaluation and gradients. Training uses mini-batch gradient descent on
   squared loss with L2 regularisation.

   The linear part's sufficient statistics are the covariance aggregates
   (shared with [Linreg]); the factor part's gradients involve third and
   fourth moments that [6] reparameterises — here they are computed by
   passes over the (possibly factorised-enumerated) data matrix, which is
   the substitution documented in DESIGN.md. *)

type model = {
  w0 : float;
  w : float array; (* n *)
  v : float array array; (* n x rank *)
}

type params = {
  rank : int;
  learning_rate : float;
  iterations : int; (* epochs *)
  l2 : float;
  init_scale : float;
  seed : int;
}

let default_params =
  { rank = 4; learning_rate = 0.01; iterations = 50; l2 = 1e-4; init_scale = 0.05; seed = 3 }

let init ~params n =
  let rng = Util.Prng.create params.seed in
  {
    w0 = 0.0;
    w = Array.make n 0.0;
    v =
      Array.init n (fun _ ->
          Array.init params.rank (fun _ ->
              Util.Prng.gaussian rng ~mu:0.0 ~sigma:params.init_scale));
  }

let predict (m : model) (x : float array) =
  let n = Array.length x in
  let rank = if n = 0 then 0 else Array.length m.v.(0) in
  let linear = ref m.w0 in
  for i = 0 to n - 1 do
    linear := !linear +. (m.w.(i) *. x.(i))
  done;
  let pair = ref 0.0 in
  for f = 0 to rank - 1 do
    let s = ref 0.0 and s2 = ref 0.0 in
    for i = 0 to n - 1 do
      let t = m.v.(i).(f) *. x.(i) in
      s := !s +. t;
      s2 := !s2 +. (t *. t)
    done;
    pair := !pair +. (0.5 *. ((!s *. !s) -. !s2))
  done;
  !linear +. !pair

let train ?(params = default_params) (x : float array array) (y : float array) : model =
  let n_rows = Array.length x in
  let n = if n_rows = 0 then 0 else Array.length x.(0) in
  let m = ref (init ~params n) in
  for _ = 1 to params.iterations do
    let model = !m in
    let g_w0 = ref 0.0 in
    let g_w = Array.make n 0.0 in
    let g_v = Array.init n (fun _ -> Array.make params.rank 0.0) in
    Array.iteri
      (fun r row ->
        let err = predict model row -. y.(r) in
        g_w0 := !g_w0 +. err;
        (* precompute per-factor sums *)
        let sums = Array.make params.rank 0.0 in
        for f = 0 to params.rank - 1 do
          for i = 0 to n - 1 do
            sums.(f) <- sums.(f) +. (model.v.(i).(f) *. row.(i))
          done
        done;
        for i = 0 to n - 1 do
          g_w.(i) <- g_w.(i) +. (err *. row.(i));
          for f = 0 to params.rank - 1 do
            let grad =
              row.(i) *. sums.(f) -. (model.v.(i).(f) *. row.(i) *. row.(i))
            in
            g_v.(i).(f) <- g_v.(i).(f) +. (err *. grad)
          done
        done)
      x;
    let scale = params.learning_rate /. float_of_int (Stdlib.max 1 n_rows) in
    m :=
      {
        w0 = model.w0 -. (scale *. !g_w0);
        w =
          Array.mapi
            (fun i w -> w -. (scale *. (g_w.(i) +. (params.l2 *. w))))
            model.w;
        v =
          Array.mapi
            (fun i vi ->
              Array.mapi
                (fun f vif -> vif -. (scale *. (g_v.(i).(f) +. (params.l2 *. vif))))
                vi)
            model.v;
      }
  done;
  !m

let mse (m : model) x y =
  let n = Array.length x in
  if n = 0 then 0.0
  else begin
    let se = ref 0.0 in
    Array.iteri
      (fun i row ->
        let err = predict m row -. y.(i) in
        se := !se +. (err *. err))
      x;
    !se /. float_of_int n
  end
