(* Model selection over one covariance matrix (Section 1.5).

   Once the moment matrix is computed, a model over ANY feature subset is a
   small solve on a submatrix — no new data pass. This is the paper's "train
   several models in the time a slower system trains one": TensorFlow would
   rescan the data matrix per candidate model, the structure-aware path
   re-solves in milliseconds. Candidate subsets are scored by
   moments-derived training MSE with a BIC-style penalty on subset size. *)

open Util

type candidate = {
  columns : string list; (* feature columns (by name) used *)
  weights : Vec.t;
  mse : float;
  score : float; (* penalised: lower is better *)
}

(* Solve ridge regression restricted to the feature columns [cols] (indices
   into the moment matrix, excluding the response). *)
let solve_subset (m : Moment.t) ~(ridge : float) (cols : int array) =
  let r = Option.get m.response_col in
  let n = Stdlib.max 1.0 m.count in
  let dim = Array.length cols in
  let a =
    Mat.init dim dim (fun i j ->
        (Mat.get m.matrix cols.(i) cols.(j) /. n) +. if i = j then ridge else 0.0)
  in
  let b = Array.map (fun i -> Mat.get m.matrix i r /. n) cols in
  let theta = Mat.solve_spd a b in
  let yy = Mat.get m.matrix r r /. n in
  (* training MSE from moments *)
  let a_theta = Mat.matvec a theta in
  let mse =
    yy -. (2.0 *. Vec.dot theta b) +. Vec.dot theta a_theta
    -. (ridge *. Vec.dot theta theta)
  in
  (theta, Stdlib.max 0.0 mse)

let evaluate_subset (m : Moment.t) ~ridge (cols : int array) : candidate =
  let weights, mse = solve_subset m ~ridge cols in
  let k = float_of_int (Array.length cols) in
  let n = Stdlib.max 2.0 m.count in
  (* BIC-style: n log mse + k log n *)
  let score = (n *. log (Stdlib.max 1e-12 mse)) +. (k *. log n) in
  {
    columns = Array.to_list (Array.map (fun i -> m.columns.(i)) cols);
    weights;
    mse;
    score;
  }

(* Greedy forward selection over feature columns, entirely moment-driven.
   Returns the best candidate found and the full trail (one candidate per
   greedy round), so callers can count how many models were (re)trained. *)
let forward_selection ?(ridge = 1e-3) ?(max_features = 8) (m : Moment.t) :
    candidate * candidate list =
  let r = Option.get m.response_col in
  let all =
    List.filter (fun i -> i <> r) (List.init (Moment.width m) Fun.id)
  in
  let intercept = 0 in
  let rec step chosen pool best trail rounds =
    if rounds = 0 || pool = [] then (best, List.rev trail)
    else begin
      let candidates =
        List.map
          (fun c -> (c, evaluate_subset m ~ridge (Array.of_list (chosen @ [ c ]))))
          pool
      in
      let c_best, cand =
        List.fold_left
          (fun (bc, b) (c, cand) ->
            if cand.score < b.score then (Some c, cand) else (bc, b))
          (None, best) candidates
      in
      match c_best with
      | None -> (best, List.rev trail) (* no improvement *)
      | Some c ->
          step (chosen @ [ c ])
            (List.filter (fun x -> x <> c) pool)
            cand (cand :: trail) (rounds - 1)
    end
  in
  let base = evaluate_subset m ~ridge [| intercept |] in
  step [ intercept ]
    (List.filter (fun i -> i <> intercept) all)
    base [ base ] max_features

(* Exhaustive best subset over an explicit list of column-name subsets. *)
let best_of (m : Moment.t) ~ridge (subsets : string list list) : candidate =
  let by_name name = Moment.column_index m name in
  List.fold_left
    (fun best cols ->
      let cand =
        evaluate_subset m ~ridge (Array.of_list (List.map by_name cols))
      in
      match best with
      | Some b when b.score <= cand.score -> Some b
      | _ -> Some cand)
    None subsets
  |> Option.get
