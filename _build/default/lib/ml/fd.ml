(* Functional dependencies for learning (Section 3.2).

   If city -> country holds, the country-level aggregates are redundant:
   every aggregate grouped by country (or by country and anything else) is a
   sum of the corresponding city-level aggregates through the FD mapping.
   Exploiting this shrinks the covariance batch — the paper's
   reparameterisation story at the aggregate level — and the dropped
   aggregates are reconstructed exactly after the fact. *)

open Relational
module Spec = Aggregates.Spec
module Feature = Aggregates.Feature

type fd = { determinant : string; dependent : string; mapping : (Value.t * Value.t) list }

(* Check determinant -> dependent in a relation containing both; returns the
   mapping when the FD holds. *)
let discover_in_relation (rel : Relation.t) ~determinant ~dependent : fd option =
  let schema = Relation.schema rel in
  match (Schema.position_opt schema determinant, Schema.position_opt schema dependent) with
  | Some d, Some e ->
      let mapping = Hashtbl.create 64 in
      let ok = ref true in
      Relation.iter
        (fun t ->
          match Hashtbl.find_opt mapping t.(d) with
          | Some v -> if not (Value.equal v t.(e)) then ok := false
          | None -> Hashtbl.add mapping t.(d) t.(e))
        rel;
      if !ok then
        Some
          {
            determinant;
            dependent;
            mapping = Hashtbl.fold (fun k v acc -> (k, v) :: acc) mapping [];
          }
      else None
  | _ -> None

(* Discover all FDs between pairs of categorical features that co-occur in a
   base relation. *)
let discover (db : Database.t) (categorical : string list) : fd list =
  List.concat_map
    (fun rel ->
      let schema = Relation.schema rel in
      let here = List.filter (Schema.mem schema) categorical in
      List.concat_map
        (fun determinant ->
          List.filter_map
            (fun dependent ->
              if determinant = dependent then None
              else discover_in_relation rel ~determinant ~dependent)
            here)
        here)
    (Database.relations db)

(* Restrict the covariance batch: drop aggregates grouping by any FD
   dependent (they are recoverable from the determinant's aggregates). *)
let reduced_covariance_batch (f : Feature.t) (fds : fd list) =
  let dependents = List.map (fun fd -> fd.dependent) fds in
  let batch = Aggregates.Batch.covariance f in
  let kept, dropped =
    List.partition
      (fun (s : Spec.t) ->
        not (List.exists (fun d -> List.mem d s.group_by) dependents))
      batch.Aggregates.Batch.aggregates
  in
  ({ batch with Aggregates.Batch.aggregates = kept }, dropped)

(* Reconstruct a dropped aggregate's result from the corresponding
   determinant-grouped results: replace the dependent attribute in keys via
   the FD mapping and re-aggregate. Works for aggregates whose group-by
   contains the dependent; the caller supplies the result of the SAME
   aggregate with the dependent replaced by its determinant. *)
let reconstruct (fd : fd) ~(dependent_spec : Spec.t) (determinant_result : Spec.result) :
    Spec.result =
  ignore dependent_spec;
  let table = Hashtbl.create 64 in
  List.iter
    (fun (assignment, v) ->
      let mapped =
        List.sort compare
          (List.map
             (fun (a, value) ->
               if a = fd.determinant then
                 match List.find_opt (fun (k, _) -> Value.equal k value) fd.mapping with
                 | Some (_, dep) -> (fd.dependent, dep)
                 | None -> (fd.dependent, Value.Null)
               else (a, value))
             assignment)
      in
      let cur = Option.value ~default:0.0 (Hashtbl.find_opt table mapped) in
      Hashtbl.replace table mapped (cur +. v))
    determinant_result;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []

(* Swap the dependent for its determinant in an aggregate's group-by: the
   aggregate actually computed in the reduced regime. *)
let determinant_spec (fd : fd) (s : Spec.t) : Spec.t =
  Spec.make ~filter:s.filter ~id:(s.id ^ "@" ^ fd.determinant) ~terms:s.terms
    ~group_by:
      (List.sort_uniq compare
         (List.map (fun g -> if g = fd.dependent then fd.determinant else g) s.group_by))
    ()
