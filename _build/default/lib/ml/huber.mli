(** Robust (Huber-loss) regression (Section 2.3): the gradient splits per
    tuple on the additive inequality |<w,x> - y| <= delta, so each step is a
    batch of theta-join aggregates under the current parameters. *)

type data = { x : float array array; y : float array }

type params = {
  delta : float;  (** the quadratic/linear crossover band *)
  learning_rate : float;
  iterations : int;
  l2 : float;
}

val default_params : params

val gradient_aggregates : data -> float array -> delta:float -> float array * int
(** One step's inequality-aggregate batch: the per-feature gradient sums and
    the number of in-band tuples. *)

val train : ?params:params -> data -> float array
val predict : float array -> float array -> float
val objective : ?params:params -> float array -> data -> float
