(* Linear support vector machines via sub-gradient descent (Section 2.3).

   The hinge loss L(w) = (1/N) sum max(0, 1 - y <w, x>) + (lambda/2)||w||^2
   has sub-gradient contributions only from margin violators — the tuples
   satisfying the ADDITIVE INEQUALITY  sum_i (y * x_i) * w_i < 1. Each
   sub-gradient step therefore needs the aggregates

       SUM(y * x_j)  WHERE  sum_i (y * x_i) * w_i < 1       for every j
       SUM(1)        WHERE  ...                              (violator count)

   re-evaluated under the CURRENT w each step: a batch of theta-join
   aggregates. [subgradient_aggregates] evaluates that batch; training folds
   it into projected sub-gradient descent. Binary labels in {-1, +1}. *)

type data = { x : float array array; y : float array (* +-1 *) }

type params = {
  lambda : float;
  learning_rate : float;
  iterations : int;
}

let default_params = { lambda = 1e-2; learning_rate = 0.05; iterations = 500 }

(* The inequality-aggregate batch for one sub-gradient step: given w, for
   each feature j returns SUM(y * x_j) over violators, plus the violator
   count. This is the Section 2.3 aggregate form
     SUM(X) WHERE X1*w1 + ... + Xn*wn > c
   with X = y*x_j, weights w, and the inequality y<w,x> < 1 rewritten as
   (-y x) . w > -1. *)
let subgradient_aggregates (d : data) (w : float array) =
  let n_features = Array.length w in
  let sums = Array.make n_features 0.0 in
  let violators = ref 0 in
  Array.iteri
    (fun i row ->
      let margin = ref 0.0 in
      Array.iteri (fun j v -> margin := !margin +. (w.(j) *. v)) row;
      if d.y.(i) *. !margin < 1.0 then begin
        incr violators;
        Array.iteri (fun j v -> sums.(j) <- sums.(j) +. (d.y.(i) *. v)) row
      end)
    d.x;
  (sums, !violators)

let train ?(params = default_params) (d : data) : float array =
  let n = Stdlib.max 1 (Array.length d.x) in
  let n_features = if n = 0 then 0 else Array.length d.x.(0) in
  let w = Array.make n_features 0.0 in
  for it = 1 to params.iterations do
    let lr = params.learning_rate /. sqrt (float_of_int it) in
    let sums, _ = subgradient_aggregates d w in
    for j = 0 to n_features - 1 do
      let grad = (params.lambda *. w.(j)) -. (sums.(j) /. float_of_int n) in
      w.(j) <- w.(j) -. (lr *. grad)
    done
  done;
  w

let predict w row =
  let acc = ref 0.0 in
  Array.iteri (fun j v -> acc := !acc +. (w.(j) *. v)) row;
  if !acc >= 0.0 then 1.0 else -1.0

let accuracy w (d : data) =
  if Array.length d.x = 0 then 1.0
  else begin
    let correct = ref 0 in
    Array.iteri (fun i row -> if predict w row = d.y.(i) then incr correct) d.x;
    float_of_int !correct /. float_of_int (Array.length d.x)
  end

(* Hinge objective, for convergence tests. *)
let objective ?(lambda = default_params.lambda) w (d : data) =
  let n = Stdlib.max 1 (Array.length d.x) in
  let loss = ref 0.0 in
  Array.iteri
    (fun i row ->
      let margin = ref 0.0 in
      Array.iteri (fun j v -> margin := !margin +. (w.(j) *. v)) row;
      loss := !loss +. Stdlib.max 0.0 (1.0 -. (d.y.(i) *. !margin)))
    d.x;
  let reg = Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 w in
  (!loss /. float_of_int n) +. (lambda /. 2.0 *. reg)
