(* Chow-Liu trees from the mutual-information aggregate batch (Figure 5's
   "Mutual inf." workload: model selection and Chow-Liu trees).

   The batch provides the total count, per-attribute marginal counts and
   pairwise joint counts; mutual information of each pair follows directly,
   and the Chow-Liu tree is the maximum spanning tree of the complete graph
   weighted by MI (Kruskal). *)

open Relational
module Spec = Aggregates.Spec

(* I(X; Y) = sum_{x,y} p(x,y) log (p(x,y) / (p(x) p(y))), from counts. *)
let mutual_information ~total ~(marginal_x : Spec.result) ~(marginal_y : Spec.result)
    ~(joint : Spec.result) ~x ~y =
  if total <= 0.0 then 0.0
  else
    List.fold_left
      (fun acc (assignment, c_xy) ->
        if c_xy <= 0.0 then acc
        else begin
          let vx = List.assoc x assignment and vy = List.assoc y assignment in
          let c_x = Spec.lookup marginal_x [ (x, vx) ] in
          let c_y = Spec.lookup marginal_y [ (y, vy) ] in
          if c_x <= 0.0 || c_y <= 0.0 then acc
          else
            let p_xy = c_xy /. total in
            acc +. (p_xy *. log (c_xy *. total /. (c_x *. c_y)))
        end)
      0.0 joint

type edge = { a : string; b : string; mi : float }

(* Pairwise MI for all attribute pairs, from the batch results. *)
let pairwise_mi (attrs : string list) (lookup : string -> Spec.result) : edge list =
  let total = Spec.scalar_result (lookup "count") in
  let rec pairs = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
  in
  List.map
    (fun (x, y) ->
      let joint = lookup (Printf.sprintf "count|%s,%s" x y) in
      let marginal_x = lookup (Printf.sprintf "count|%s" x) in
      let marginal_y = lookup (Printf.sprintf "count|%s" y) in
      { a = x; b = y; mi = mutual_information ~total ~marginal_x ~marginal_y ~joint ~x ~y })
    (pairs attrs)

(* Kruskal maximum spanning tree over MI-weighted edges. *)
let maximum_spanning_tree (attrs : string list) (edges : edge list) : edge list =
  let parent = Hashtbl.create 16 in
  List.iter (fun a -> Hashtbl.replace parent a a) attrs;
  let rec find a =
    let p = Hashtbl.find parent a in
    if p = a then a
    else begin
      let root = find p in
      Hashtbl.replace parent a root;
      root
    end
  in
  let sorted = List.sort (fun e1 e2 -> compare e2.mi e1.mi) edges in
  List.filter
    (fun e ->
      let ra = find e.a and rb = find e.b in
      if ra = rb then false
      else begin
        Hashtbl.replace parent ra rb;
        true
      end)
    sorted

(* End to end: synthesise the MI batch, run LMFAO, build the tree. *)
let tree_over_database ?(engine_options = Lmfao.Engine.default_options)
    (db : Database.t) (attrs : string list) : edge list =
  let batch = Aggregates.Batch.mutual_information attrs in
  let table = Lazy.force (Lmfao.Engine.eval ~options:engine_options db batch).table in
  let lookup id =
    match Hashtbl.find_opt table id with
    | Some r -> r
    | None -> invalid_arg ("Chow_liu: missing aggregate " ^ id)
  in
  maximum_spanning_tree attrs (pairwise_mi attrs lookup)
