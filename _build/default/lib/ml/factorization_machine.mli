(** Degree-2 factorisation machines (Section 2.1's model list):
    y^ = w0 + sum w_i x_i + sum_{i<j} <v_i, v_j> x_i x_j with rank-r
    factors, trained by full-batch gradient descent on squared loss. The
    factor-part gradients need third/fourth moments that [6]
    reparameterises; here they are computed over the explicit data matrix
    (the substitution documented in DESIGN.md). *)

type model = { w0 : float; w : float array; v : float array array }

type params = {
  rank : int;
  learning_rate : float;
  iterations : int;
  l2 : float;
  init_scale : float;
  seed : int;
}

val default_params : params

val init : params:params -> int -> model
val predict : model -> float array -> float
(** O(n * rank) via the sum-of-squares identity. *)

val train : ?params:params -> float array array -> float array -> model
val mse : model -> float array array -> float array -> float
