(* F: regression models over factorised joins (the paper's earliest system
   in this line [67, 56]).

   Where LMFAO decomposes the aggregate batch over a join tree of views, F
   evaluates it in one factorised pass: the covariance ring is plugged
   directly into the factorised-join traversal, each feature variable
   lifting its values to (1, x*e_i, x^2*E_ii). Because every variable occurs
   exactly once in a variable order, no ownership bookkeeping is needed.
   This is a second, independently-structured engine for the same
   sufficient statistics — the test suite checks it against both LMFAO and
   the flat computation. *)

open Relational
module Cov = Rings.Covariance
module P = Fivm.Payload.Cov_dyn

(* Observability ([f.*]): how many value lifts the single factorised pass
   performs — the per-value work of Figure 9's re-mapping. *)
let c_lift_ops = Obs.counter "f.lift_ops"

(* The covariance triple of the numeric [features] over the natural join. *)
let covariance ?(cache = true) (db : Database.t) ~(features : string list) : Cov.t =
  Obs.with_span "f.covariance" @@ fun () ->
  let rels = Database.relations db in
  let order = Factorized.Var_order.of_relations rels in
  let dim = List.length features in
  let index = Hashtbl.create 16 in
  List.iteri (fun i f -> Hashtbl.replace index f i) features;
  let lift var v : P.t =
    Obs.incr c_lift_ops;
    match Hashtbl.find_opt index var with
    | Some i -> `Elem (Cov.lift dim i (Value.to_float v))
    | None -> `One
  in
  let result =
    Factorized.Fjoin.eval_semiring ~cache (module P) ~lift rels order
  in
  Fivm.Payload.cov_elem dim result

(* Ridge linear regression trained from the factorised covariance pass:
   response must be listed among [features]. *)
let train_linreg ?(ridge = 1e-3) ?cache (db : Database.t) ~(features : string list)
    ~(response : string) : float array * string list =
  let cov = covariance ?cache db ~features in
  let moment = Cov.moment_matrix cov in
  let resp_slot =
    match List.find_index (fun f -> f = response) features with
    | Some i -> i + 1
    | None -> invalid_arg "F_engine.train_linreg: response not in features"
  in
  let keep =
    Array.of_list
      (List.filter (fun i -> i <> resp_slot) (List.init (List.length features + 1) Fun.id))
  in
  let n = Stdlib.max 1.0 (Cov.count cov) in
  let a =
    Util.Mat.init (Array.length keep) (Array.length keep) (fun i j ->
        (Util.Mat.get moment keep.(i) keep.(j) /. n) +. if i = j then ridge else 0.0)
  in
  let b = Array.map (fun i -> Util.Mat.get moment i resp_slot /. n) keep in
  let weights = Util.Mat.solve_spd a b in
  let columns =
    Array.to_list
      (Array.map (fun i -> if i = 0 then "intercept" else List.nth features (i - 1)) keep)
  in
  (weights, columns)
