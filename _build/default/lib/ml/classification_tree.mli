(** Classification trees from aggregate batches (Section 2.2): per-node
    class-frequency counts (grouped, optionally filtered) score candidate
    splits by Gini impurity or entropy; the data matrix is never
    materialised during training. *)

open Relational
module Spec = Aggregates.Spec
module Feature = Aggregates.Feature

type criterion = Gini | Entropy

type split = Decision_tree.split =
  | Threshold of string * float
  | Category of string * Value.t

type tree =
  | Leaf of { prediction : Value.t; counts : (Value.t * float) list }
  | Node of { split : split; left : tree; right : tree; count : float }

type params = {
  max_depth : int;
  min_samples : float;
  min_gain : float;
  criterion : criterion;
}

val default_params : params

val impurity : criterion -> float list -> float
(** Gini / entropy of a class-count distribution. *)

val node_specs :
  path:Predicate.t -> class_attr:string -> Feature.t -> (string * float list) list -> Spec.t list
(** The per-node batch: grouped class counts under the path filter, per
    threshold and per categorical feature. *)

val train :
  ?params:params ->
  ?engine_options:Lmfao.Engine.options ->
  Database.t ->
  class_attr:string ->
  Feature.t ->
  tree
(** Structure-aware training; [class_attr] must not appear in the feature
    map. One LMFAO batch per node. *)

val train_flat :
  ?params:params ->
  Relation.t ->
  class_attr:string ->
  Feature.t ->
  thresholds:(string * float list) list ->
  tree
(** Same algorithm over a materialised matrix — the reference. *)

val predict : tree -> (string -> Value.t) -> Value.t
val accuracy : tree -> Relation.t -> class_attr:string -> float
val size : tree -> int
