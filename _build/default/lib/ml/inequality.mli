(** Aggregates with additive inequality conditions (Section 2.3):
    sum over pairs with a_i + b_j > c of payload products. The classical
    engine checks the inequality per pair (O(n*m)); sorting one side with
    suffix sums needs O((n+m) log (n+m)) — the paper's "polynomially less
    time". *)

val naive_sum_pairs :
  (float * float) array -> (float * float) array -> threshold:float -> float
(** Reference: nested loop over (key, payload) pairs. *)

val fast_sum_pairs :
  (float * float) array -> (float * float) array -> threshold:float -> float
(** Sort + suffix sums + binary search; same result. *)

val count_pairs : float array -> float array -> threshold:float -> float
(** Number of qualifying pairs. *)

type sorted
(** Presorted (key, payload) data with suffix sums, for repeated threshold
    probes. *)

val presort : (float * float) array -> sorted

val sum_above : sorted -> float -> float
(** Total payload with key strictly above the threshold; O(log n). *)
