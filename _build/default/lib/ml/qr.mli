(** QR decomposition of relational data (Section 2.1's model list): the R
    factor comes from the covariance aggregates alone (R^T R = X^T X), so no
    data matrix is materialised; Q rows are derived on demand. *)

open Util

val r_of_gram : Mat.t -> Mat.t
(** Upper-triangular R with [gram = R^T R].
    @raise Mat.Not_positive_definite for rank-deficient Gram matrices. *)

val r_of_moment : ?ridge:float -> Moment.t -> Mat.t * string array
(** R over the moment matrix's feature columns (response excluded).
    One-hot moments are rank-deficient (indicators sum to the intercept);
    [ridge] adds a jitter of [ridge * max_diagonal] before factorising. *)

val solve_r : Mat.t -> float array -> float array
(** Back substitution with upper-triangular R. *)

val q_row : Mat.t -> float array -> float array
(** The Q-row of a data row x: (R^T)^{-1} x. *)

val is_upper_triangular : ?eps:float -> Mat.t -> bool
