(** Chow-Liu trees from the mutual-information batch (Figure 5's "Mutual
    inf." workload): pairwise MI from the marginal/joint counts, maximum
    spanning tree by Kruskal. *)

open Relational
module Spec = Aggregates.Spec

val mutual_information :
  total:float ->
  marginal_x:Spec.result ->
  marginal_y:Spec.result ->
  joint:Spec.result ->
  x:string ->
  y:string ->
  float
(** I(X; Y) from counts; non-negative up to float noise. *)

type edge = { a : string; b : string; mi : float }

val pairwise_mi : string list -> (string -> Spec.result) -> edge list
(** MI of every attribute pair, from mutual-information batch results. *)

val maximum_spanning_tree : string list -> edge list -> edge list
(** Kruskal; returns |attrs| - 1 edges for connected inputs. *)

val tree_over_database :
  ?engine_options:Lmfao.Engine.options -> Database.t -> string list -> edge list
(** End to end: synthesise the batch, run LMFAO, build the tree. *)
