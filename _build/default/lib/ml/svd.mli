(** Singular value decomposition of the (never materialised) data matrix
    from its Gram/moment matrix (Section 2.1's model list): sigma and V from
    the Jacobi eigendecomposition of X^T X; U rows derived on demand. *)

open Util

val jacobi_eigen : ?sweeps:int -> ?eps:float -> Mat.t -> float array * Mat.t
(** Full symmetric eigendecomposition by cyclic Jacobi rotations:
    (eigenvalues descending, eigenvectors as columns). *)

type t = {
  singular_values : float array;  (** descending *)
  right_vectors : Mat.t;  (** V; columns are right singular vectors *)
}

val of_gram : Mat.t -> t
val of_moment : Moment.t -> t * string array
(** Over the moment matrix's feature columns (response excluded). *)

val u_row : t -> float array -> float array
(** The left-singular-space image of a data row: V^T x / sigma. *)

val gram_reconstruction_error : t -> Mat.t -> k:int -> float
(** Frobenius error of the rank-k reconstruction of the Gram matrix. *)
