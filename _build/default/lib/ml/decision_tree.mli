(** CART regression trees trained from aggregate batches (Section 2.2): one
    batch of filtered variance triples per tree node answers every candidate
    split; the data matrix is never materialised during training. *)

open Relational
module Spec = Aggregates.Spec
module Feature = Aggregates.Feature

type split =
  | Threshold of string * float  (** goes left when attr >= threshold *)
  | Category of string * Value.t  (** goes left when attr = value *)

type tree =
  | Leaf of { prediction : float; count : float }
  | Node of { split : split; left : tree; right : tree; count : float }

type params = {
  max_depth : int;
  min_samples : float;  (** do not split below this many rows *)
  min_gain : float;  (** minimum SSE reduction to accept a split *)
}

val default_params : params

val sse : count:float -> sum:float -> sum2:float -> float
(** Sum of squared errors around the mean, from a variance triple. *)

type evaluator = Spec.t list -> string -> Spec.result
(** How a node's batch gets answered (engine or flat scans). *)

val node_specs :
  path:Predicate.t -> Feature.t -> (string * float list) list -> Spec.t list
(** The per-node batch under a path filter: total triple, per-threshold
    triples, per-categorical grouped triples. *)

val thresholds_of_db : Database.t -> Feature.t -> (string * float list) list

val train :
  ?params:params ->
  ?engine_options:Lmfao.Engine.options ->
  Database.t ->
  Feature.t ->
  tree
(** Structure-aware training: one LMFAO batch per node. *)

val train_flat :
  ?params:params ->
  Relation.t ->
  Feature.t ->
  thresholds:(string * float list) list ->
  tree
(** The same algorithm with batches answered by scans over a materialised
    matrix — the reference implementation. *)

val predict : tree -> (string -> Value.t) -> float
val rmse_on : tree -> Relation.t -> response:string -> float
val depth : tree -> int
val size : tree -> int
val pp : ?indent:int -> Format.formatter -> tree -> unit
