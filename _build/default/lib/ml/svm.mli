(** Linear SVMs by sub-gradient descent (Section 2.3): the hinge-loss
    sub-gradient only involves margin violators — tuples satisfying an
    ADDITIVE INEQUALITY over the current weights — so each step is a batch
    of theta-join aggregates re-evaluated under the current parameters. *)

type data = { x : float array array; y : float array (** labels in -1/+1 *) }

type params = { lambda : float; learning_rate : float; iterations : int }

val default_params : params

val subgradient_aggregates : data -> float array -> float array * int
(** For the current weights: per feature j, SUM(y * x_j) over violators,
    plus the violator count — the Section 2.3 aggregate batch of one step. *)

val train : ?params:params -> data -> float array
val predict : float array -> float array -> float
val accuracy : float array -> data -> float
val objective : ?lambda:float -> float array -> data -> float
