(** K-means over relational data (Section 3.3 / Rk-means): weighted Lloyd as
    the structure-agnostic reference, and the structure-aware grid coreset —
    per-dimension quantisation whose joint cell weights are ONE count
    aggregate over the (never materialised) join. *)

open Relational

type clustering = {
  centroids : float array array;  (** k x d *)
  cost : float;  (** weighted sum of squared distances *)
  iterations : int;
}

val sq_dist : float array -> float array -> float
val nearest : float array array -> float array -> int * float

val lloyd :
  ?seed:int -> ?max_iters:int -> k:int -> (float array * float) array -> clustering
(** Weighted Lloyd with greedy farthest-point seeding. *)

val points_of_relation : Relation.t -> string list -> (float array * float) array
(** Unit-weight points from a materialised relation's numeric columns. *)

type grid = { dims : string array; lo : float array; step : float array; cells : int }

val bucket_attr : string -> string
val make_grid : Database.t -> dims:string list -> cells:int -> grid
val cell_of_value : grid -> int -> float -> int
val centre_of_cell : grid -> int -> int -> float

val augmented_database : Database.t -> grid -> Database.t
(** Each dimension's owner relation gains its bucket column. *)

val coreset :
  ?engine_options:Lmfao.Engine.options ->
  Database.t ->
  grid ->
  (float array * float) array
(** Occupied grid cells with their join counts (cell centres as points). *)

val rk_means :
  ?seed:int ->
  ?cells:int ->
  ?engine_options:Lmfao.Engine.options ->
  k:int ->
  Database.t ->
  dims:string list ->
  clustering
(** Cluster the weighted grid coreset instead of the join. *)

val cost_of : float array array -> (float array * float) array -> float
(** Cost of given centroids over explicit weighted points. *)
