(* Principal component analysis from the covariance triple (Section 2.1:
   "Similar aggregates can be derived for ... principal component
   analysis"). The centred covariance matrix is assembled from (c, s, Q)
   as Q/N - (s/N)(s/N)^T — no data pass — and the leading components are
   extracted by power iteration with deflation. *)

open Util
module Cov = Rings.Covariance

(* Centred covariance matrix from the ring triple. *)
let centred_covariance (t : Cov.t) : Mat.t =
  let n = Stdlib.max 1.0 (Cov.count t) in
  let s = Cov.sums t and q = Cov.products t in
  let d = Vec.dim s in
  Mat.init d d (fun i j ->
      (Mat.get q i j /. n) -. (s.(i) /. n *. (s.(j) /. n)))

type component = { eigenvalue : float; vector : Vec.t }

(* Top [k] principal components by power iteration + deflation. *)
let components ?(k = 2) ?(iters = 500) (t : Cov.t) : component list
    =
  let cov = centred_covariance t in
  let d = Mat.rows cov in
  let k = Stdlib.min k d in
  let rng = Prng.create 42 in
  let rec extract m remaining acc =
    if remaining = 0 then List.rev acc
    else begin
      let seed = Array.init d (fun _ -> Prng.float_range rng (-1.0) 1.0) in
      let eigenvalue, vector = Mat.power_iteration ~iters m seed in
      (* deflate: m <- m - lambda v v^T *)
      let m' = Mat.copy m in
      Mat.ger ~alpha:(-.eigenvalue) vector vector m';
      extract m' (remaining - 1) ({ eigenvalue; vector } :: acc)
    end
  in
  extract cov k []

(* Fraction of total variance captured by the given components. *)
let explained_variance (t : Cov.t) (comps : component list) =
  let cov = centred_covariance t in
  let total = ref 0.0 in
  for i = 0 to Mat.rows cov - 1 do
    total := !total +. Mat.get cov i i
  done;
  if !total <= 0.0 then 0.0
  else List.fold_left (fun acc c -> acc +. c.eigenvalue) 0.0 comps /. !total

let project (comps : component list) (row : float array) =
  Array.of_list (List.map (fun c -> Vec.dot c.vector row) comps)
