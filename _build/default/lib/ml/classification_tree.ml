(* Classification trees from aggregate batches (Section 2.2: "For
   classification trees, the aggregates encode the entropy or the Gini index
   using group-by counts to compute value frequencies in the data matrix").

   Structure mirrors [Decision_tree], but the per-node batch consists of
   class-frequency counts: COUNT GROUP BY class (optionally under a
   threshold filter, or additionally grouped by a categorical feature), and
   splits are scored by weighted Gini impurity or entropy. *)

open Relational
module Spec = Aggregates.Spec
module Feature = Aggregates.Feature

type criterion = Gini | Entropy

type split = Decision_tree.split =
  | Threshold of string * float
  | Category of string * Value.t

type tree =
  | Leaf of { prediction : Value.t; counts : (Value.t * float) list }
  | Node of { split : split; left : tree; right : tree; count : float }

type params = {
  max_depth : int;
  min_samples : float;
  min_gain : float;
  criterion : criterion;
}

let default_params =
  { max_depth = 4; min_samples = 10.0; min_gain = 1e-6; criterion = Gini }

(* class distribution -> impurity *)
let impurity criterion (counts : float list) =
  let total = List.fold_left ( +. ) 0.0 counts in
  if total <= 0.0 then 0.0
  else
    match criterion with
    | Gini ->
        1.0
        -. List.fold_left
             (fun acc c ->
               let p = c /. total in
               acc +. (p *. p))
             0.0 counts
    | Entropy ->
        -.List.fold_left
            (fun acc c ->
              if c <= 0.0 then acc
              else
                let p = c /. total in
                acc +. (p *. log p))
            0.0 counts

(* class counts as an assoc over class values *)
type dist = (Value.t * float) list

let dist_total (d : dist) = List.fold_left (fun acc (_, c) -> acc +. c) 0.0 d

let dist_sub (a : dist) (b : dist) : dist =
  List.map
    (fun (v, c) ->
      let c' = match List.find_opt (fun (v', _) -> Value.equal v v') b with
        | Some (_, x) -> x
        | None -> 0.0
      in
      (v, c -. c'))
    a

(* re-key [d] on [base]'s classes (filtered results may miss classes) *)
let align (base : dist) (d : dist) : dist =
  List.map
    (fun (v, _) ->
      match List.find_opt (fun (v', _) -> Value.equal v v') d with
      | Some (_, c) -> (v, c)
      | None -> (v, 0.0))
    base

let dist_of_result ~class_attr (r : Spec.result) : dist =
  List.filter_map
    (fun (assignment, c) ->
      match List.assoc_opt class_attr assignment with
      | Some v -> Some (v, c)
      | None -> None)
    r

(* weighted impurity of a candidate split *)
let split_cost criterion (left : dist) (right : dist) =
  let nl = dist_total left and nr = dist_total right in
  let n = nl +. nr in
  if n <= 0.0 then 0.0
  else
    (nl /. n *. impurity criterion (List.map snd left))
    +. (nr /. n *. impurity criterion (List.map snd right))

let node_specs ~(path : Predicate.t) ~(class_attr : string) (f : Feature.t)
    (thresholds : (string * float list) list) : Spec.t list =
  let with_path extra =
    match (path, extra) with
    | Predicate.True, e -> e
    | p, Predicate.True -> p
    | p, e -> Predicate.And (p, e)
  in
  Spec.make ~filter:(with_path Predicate.True) ~id:"total" ~terms:[]
    ~group_by:[ class_attr ] ()
  :: List.concat_map
       (fun x ->
         let ths = Option.value ~default:[] (List.assoc_opt x thresholds) in
         List.mapi
           (fun j c ->
             Spec.make
               ~filter:(with_path (Predicate.Ge (x, Value.Float c)))
               ~id:(Printf.sprintf "ge|%s|%d" x j)
               ~terms:[] ~group_by:[ class_attr ] ())
           ths)
       f.continuous
  @ List.map
      (fun k ->
        Spec.make ~filter:(with_path Predicate.True)
          ~id:(Printf.sprintf "by|%s" k)
          ~terms:[] ~group_by:[ k; class_attr ] ())
      f.categorical

let rec grow ~params ~evaluate ~path ~class_attr (f : Feature.t) thresholds depth :
    tree =
  let lookup : string -> Spec.result =
    evaluate (node_specs ~path ~class_attr f thresholds)
  in
  let total = dist_of_result ~class_attr (lookup "total") in
  let n = dist_total total in
  let prediction =
    match List.sort (fun (_, a) (_, b) -> compare b a) total with
    | (v, _) :: _ -> v
    | [] -> Value.Null
  in
  let leaf () = Leaf { prediction; counts = total } in
  if depth >= params.max_depth || n < params.min_samples || List.length total <= 1
  then leaf ()
  else begin
    let node_impurity = impurity params.criterion (List.map snd total) in
    let candidates = ref [] in
    List.iter
      (fun x ->
        let ths = Option.value ~default:[] (List.assoc_opt x thresholds) in
        List.iteri
          (fun j c ->
            (* counts with x >= c, aligned on [total]'s classes *)
            let left =
              align total
                (dist_of_result ~class_attr (lookup (Printf.sprintf "ge|%s|%d" x j)))
            in
            let right = dist_sub total left in
            if dist_total left > 0.0 && dist_total right > 0.0 then
              candidates :=
                ( node_impurity -. split_cost params.criterion left right,
                  Threshold (x, c) )
                :: !candidates)
          ths)
      f.continuous;
    List.iter
      (fun k ->
        let grouped = lookup (Printf.sprintf "by|%s" k) in
        let k_values =
          List.sort_uniq Value.compare
            (List.filter_map
               (fun (assignment, _) -> List.assoc_opt k assignment)
               grouped)
        in
        List.iter
          (fun v ->
            let left =
              List.map
                (fun (cls, _) ->
                  ( cls,
                    Spec.lookup grouped
                      (List.sort compare [ (k, v); (class_attr, cls) ]) ))
                total
            in
            let right = dist_sub total left in
            if dist_total left > 0.0 && dist_total right > 0.0 then
              candidates :=
                ( node_impurity -. split_cost params.criterion left right,
                  Category (k, v) )
                :: !candidates)
          k_values)
      f.categorical;
    let describe = function
      | Threshold (x, c) -> Printf.sprintf "t|%s|%g" x c
      | Category (k, v) -> Printf.sprintf "c|%s|%s" k (Value.to_string v)
    in
    match
      List.sort
        (fun (g1, s1) (g2, s2) ->
          match compare g2 g1 with 0 -> compare (describe s1) (describe s2) | c -> c)
        !candidates
    with
    | (gain, split) :: _ when gain > params.min_gain ->
        let left_pred, right_pred =
          match split with
          | Threshold (x, c) ->
              (Predicate.Ge (x, Value.Float c), Predicate.Lt (x, Value.Float c))
          | Category (k, v) -> (Predicate.Eq (k, v), Predicate.Not (Predicate.Eq (k, v)))
        in
        let extend p =
          match path with Predicate.True -> p | _ -> Predicate.And (path, p)
        in
        Node
          {
            split;
            left = grow ~params ~evaluate ~path:(extend left_pred) ~class_attr f thresholds (depth + 1);
            right = grow ~params ~evaluate ~path:(extend right_pred) ~class_attr f thresholds (depth + 1);
            count = n;
          }
    | _ -> leaf ()
  end

let train ?(params = default_params) ?(engine_options = Lmfao.Engine.default_options)
    (db : Database.t) ~(class_attr : string) (f : Feature.t) : tree =
  let thresholds = Decision_tree.thresholds_of_db db f in
  let evaluate specs =
    let batch = { Aggregates.Batch.name = "class-node"; aggregates = specs } in
    let table = Lazy.force (Lmfao.Engine.eval ~options:engine_options db batch).table in
    fun id ->
      match Hashtbl.find_opt table id with
      | Some r -> r
      | None -> invalid_arg ("Classification_tree: missing aggregate " ^ id)
  in
  grow ~params ~evaluate ~path:Predicate.True ~class_attr f thresholds 0

let train_flat ?(params = default_params) (join : Relation.t) ~(class_attr : string)
    (f : Feature.t) ~thresholds : tree =
  let evaluate specs =
    let results = List.map (fun s -> (s.Spec.id, Spec.eval_flat join s)) specs in
    fun id ->
      match List.assoc_opt id results with
      | Some r -> r
      | None -> invalid_arg ("Classification_tree: missing aggregate " ^ id)
  in
  grow ~params ~evaluate ~path:Predicate.True ~class_attr f thresholds 0

let rec predict tree (get : string -> Value.t) =
  match tree with
  | Leaf { prediction; _ } -> prediction
  | Node { split; left; right; _ } ->
      let goes_left =
        match split with
        | Threshold (x, c) -> Value.to_float (get x) >= c
        | Category (k, v) -> Value.equal (get k) v
      in
      predict (if goes_left then left else right) get

let accuracy tree (rel : Relation.t) ~class_attr =
  let schema = Relation.schema rel in
  let n = Relation.cardinality rel in
  if n = 0 then 1.0
  else begin
    let col_of = Hashtbl.create 16 in
    List.iter
      (fun (a : Schema.attr) ->
        Hashtbl.replace col_of a.name
          (Relation.column rel (Schema.position schema a.name)))
      (Schema.attrs schema);
    let row = ref 0 in
    let get a = Column.get (Hashtbl.find col_of a) !row in
    let correct = ref 0 in
    for i = 0 to n - 1 do
      row := i;
      if Value.equal (predict tree get) (get class_attr) then incr correct
    done;
    float_of_int !correct /. float_of_int n
  end

let rec size = function
  | Leaf _ -> 1
  | Node { left; right; _ } -> 1 + size left + size right
