(** Functional dependencies for learning (Section 3.2): when
    [determinant -> dependent] holds, the dependent's group-by aggregates
    are redundant — they are exact sums of the determinant's through the FD
    mapping — so the covariance batch shrinks and the dropped results are
    reconstructed afterwards. *)

open Relational
module Spec = Aggregates.Spec
module Feature = Aggregates.Feature

type fd = {
  determinant : string;
  dependent : string;
  mapping : (Value.t * Value.t) list;  (** determinant value -> dependent value *)
}

val discover_in_relation :
  Relation.t -> determinant:string -> dependent:string -> fd option
(** Exact FD check within one relation; [Some] with the mapping if it holds. *)

val discover : Database.t -> string list -> fd list
(** All FDs between pairs of the given attributes that co-occur in a base
    relation. *)

val reduced_covariance_batch :
  Feature.t -> fd list -> Aggregates.Batch.t * Spec.t list
(** The covariance batch without aggregates grouping by any FD dependent;
    also returns the dropped aggregates. *)

val determinant_spec : fd -> Spec.t -> Spec.t
(** The aggregate actually computed in the reduced regime: the dependent
    replaced by its determinant in the group-by. *)

val reconstruct : fd -> dependent_spec:Spec.t -> Spec.result -> Spec.result
(** Exact reconstruction of a dropped aggregate's result from the
    determinant-grouped result, via the FD mapping. *)
