(** Dense float vectors. *)

type t = float array

val create : int -> t
(** Zero vector of the given dimension. *)

val init : int -> (int -> float) -> t
val copy : t -> t
val dim : t -> int
val of_array : float array -> t
val to_array : t -> float array
val get : t -> int -> float
val set : t -> int -> float -> unit
val fill : t -> float -> unit

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t

val add_in_place : t -> t -> unit
(** [add_in_place a b] sets [a := a + b]. *)

val axpy : alpha:float -> t -> t -> unit
(** [axpy ~alpha x y] sets [y := alpha * x + y]. *)

val dot : t -> t -> float
val norm2 : t -> float
val norm_inf : t -> float
val map : (float -> float) -> t -> t
val mapi : (int -> float -> float) -> t -> t

val equal : ?eps:float -> t -> t -> bool
(** Component-wise equality within [eps] (default [1e-9]). *)

val pp : Format.formatter -> t -> unit
