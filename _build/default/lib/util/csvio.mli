(** Minimal CSV support for the export/import steps of the structure-agnostic
    baseline. Simple dialect: comma separator, no embedded commas/quotes. *)

val parse_string : string -> string list list
(** Parse CSV text into rows of cells; blank lines are skipped. *)

val to_string : string list list -> string
(** Serialise rows to CSV text. *)

val write_file : string -> string list list -> unit
val read_file : string -> string list list
