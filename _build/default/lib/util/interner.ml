(* String interning: bijection between strings and dense non-negative ids.

   Categorical attribute values are interned once at load time so that joins,
   group-bys and factorised tries compare integers instead of strings. *)

type t = {
  table : (string, int) Hashtbl.t;
  mutable names : string array;
  mutable count : int;
}

let create ?(capacity = 256) () =
  { table = Hashtbl.create capacity; names = Array.make capacity ""; count = 0 }

let intern t s =
  match Hashtbl.find_opt t.table s with
  | Some id -> id
  | None ->
      let id = t.count in
      if id = Array.length t.names then begin
        let bigger = Array.make (2 * Stdlib.max 1 id) "" in
        Array.blit t.names 0 bigger 0 id;
        t.names <- bigger
      end;
      t.names.(id) <- s;
      Hashtbl.add t.table s id;
      t.count <- id + 1;
      id

let lookup t s = Hashtbl.find_opt t.table s

let name t id =
  if id < 0 || id >= t.count then invalid_arg "Interner.name: unknown id";
  t.names.(id)

let size t = t.count
