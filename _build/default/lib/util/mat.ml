(* Dense row-major matrices over floats, with just enough linear algebra for
   the in-database learning tasks: Cholesky factorisation for closed-form
   ridge regression, power iteration for PCA, and the covariance-ring
   operations. *)

type t = { rows : int; cols : int; data : float array }

let create rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Mat.create: negative dimension";
  { rows; cols; data = Array.make (rows * cols) 0.0 }

let init rows cols f =
  let data = Array.make (rows * cols) 0.0 in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      data.((i * cols) + j) <- f i j
    done
  done;
  { rows; cols; data }

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let copy m = { m with data = Array.copy m.data }

let rows m = m.rows
let cols m = m.cols

let get m i j = m.data.((i * m.cols) + j)
let set m i j x = m.data.((i * m.cols) + j) <- x
let update m i j f =
  let k = (i * m.cols) + j in
  m.data.(k) <- f m.data.(k)

let of_arrays a =
  let rows = Array.length a in
  let cols = if rows = 0 then 0 else Array.length a.(0) in
  init rows cols (fun i j -> a.(i).(j))

let to_arrays m = Array.init m.rows (fun i -> Array.init m.cols (fun j -> get m i j))

let row m i = Array.sub m.data (i * m.cols) m.cols

let map f m = { m with data = Array.map f m.data }

let add a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Mat.add: shape mismatch";
  { a with data = Array.mapi (fun k x -> x +. b.data.(k)) a.data }

let sub a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Mat.sub: shape mismatch";
  { a with data = Array.mapi (fun k x -> x -. b.data.(k)) a.data }

let scale k m = map (fun x -> k *. x) m

let add_in_place a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Mat.add_in_place: shape mismatch";
  for k = 0 to Array.length a.data - 1 do
    a.data.(k) <- a.data.(k) +. b.data.(k)
  done

let transpose m = init m.cols m.rows (fun i j -> get m j i)

let matmul a b =
  if a.cols <> b.rows then invalid_arg "Mat.matmul: shape mismatch";
  let c = create a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = get a i k in
      if aik <> 0.0 then
        for j = 0 to b.cols - 1 do
          c.data.((i * c.cols) + j) <-
            c.data.((i * c.cols) + j) +. (aik *. get b k j)
        done
    done
  done;
  c

let matvec m v =
  if m.cols <> Array.length v then invalid_arg "Mat.matvec: shape mismatch";
  Array.init m.rows (fun i ->
      let acc = ref 0.0 in
      for j = 0 to m.cols - 1 do
        acc := !acc +. (get m i j *. v.(j))
      done;
      !acc)

(* Rank-1 update: m <- m + alpha * x * y^T. The workhorse of covariance
   accumulation. *)
let ger ~alpha x y m =
  for i = 0 to m.rows - 1 do
    let axi = alpha *. x.(i) in
    if axi <> 0.0 then
      for j = 0 to m.cols - 1 do
        m.data.((i * m.cols) + j) <- m.data.((i * m.cols) + j) +. (axi *. y.(j))
      done
  done

exception Not_positive_definite

(* Cholesky factorisation A = L L^T of a symmetric positive-definite matrix;
   returns the lower-triangular factor. *)
let cholesky a =
  if a.rows <> a.cols then invalid_arg "Mat.cholesky: not square";
  let n = a.rows in
  let l = create n n in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let s = ref (get a i j) in
      for k = 0 to j - 1 do
        s := !s -. (get l i k *. get l j k)
      done;
      if i = j then begin
        if !s <= 0.0 then raise Not_positive_definite;
        set l i j (sqrt !s)
      end
      else set l i j (!s /. get l j j)
    done
  done;
  l

(* Solve A x = b for symmetric positive-definite A via Cholesky. *)
let solve_spd a b =
  let n = a.rows in
  if Array.length b <> n then invalid_arg "Mat.solve_spd: shape mismatch";
  let l = cholesky a in
  (* forward substitution: L y = b *)
  let y = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let s = ref b.(i) in
    for k = 0 to i - 1 do
      s := !s -. (get l i k *. y.(k))
    done;
    y.(i) <- !s /. get l i i
  done;
  (* backward substitution: L^T x = y *)
  let x = Array.make n 0.0 in
  for i = n - 1 downto 0 do
    let s = ref y.(i) in
    for k = i + 1 to n - 1 do
      s := !s -. (get l k i *. x.(k))
    done;
    x.(i) <- !s /. get l i i
  done;
  x

let frobenius m = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 m.data)

let equal ?(eps = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  && (let ok = ref true in
      Array.iteri
        (fun k x -> if Float.abs (x -. b.data.(k)) > eps then ok := false)
        a.data;
      !ok)

let is_symmetric ?(eps = 1e-9) m =
  m.rows = m.cols
  && (let ok = ref true in
      for i = 0 to m.rows - 1 do
        for j = i + 1 to m.cols - 1 do
          if Float.abs (get m i j -. get m j i) > eps then ok := false
        done
      done;
      !ok)

(* Dominant eigenpair by power iteration; used by PCA. *)
let power_iteration ?(iters = 200) ?(eps = 1e-10) m seed_vec =
  if m.rows <> m.cols then invalid_arg "Mat.power_iteration: not square";
  let v = ref (Vec.copy seed_vec) in
  let normalise u =
    let n = Vec.norm2 u in
    if n > 0.0 then Vec.scale (1.0 /. n) u else u
  in
  v := normalise !v;
  let lambda = ref 0.0 in
  (try
     for _ = 1 to iters do
       let w = matvec m !v in
       let l = Vec.dot w !v in
       let w = normalise w in
       if Float.abs (l -. !lambda) < eps then begin
         lambda := l;
         v := w;
         raise Exit
       end;
       lambda := l;
       v := w
     done
   with Exit -> ());
  (!lambda, !v)

let pp ppf m =
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "|";
    for j = 0 to m.cols - 1 do
      Format.fprintf ppf " %8.4g" (get m i j)
    done;
    Format.fprintf ppf " |@\n"
  done
