(** String interning: a bijection between strings and dense ids, used to
    dictionary-encode categorical values at load time. *)

type t

val create : ?capacity:int -> unit -> t
val intern : t -> string -> int
(** Id of the string, allocating a fresh id on first sight. *)

val lookup : t -> string -> int option
(** Id if already interned. *)

val name : t -> int -> string
(** Inverse of {!intern}. Raises [Invalid_argument] on unknown ids. *)

val size : t -> int
(** Number of distinct interned strings. *)
