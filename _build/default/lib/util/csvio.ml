(* Minimal CSV reading/writing.

   The structure-agnostic baseline of Figure 3 round-trips the materialised
   data matrix through CSV to model the PostgreSQL -> TensorFlow export/import
   step, so this module is on the measured path and avoids quadratic string
   building. Only the simple dialect is supported: comma separator, no quoted
   separators (our generators never emit commas inside fields). *)

let split_line line =
  String.split_on_char ',' line

let parse_string s =
  let lines = String.split_on_char '\n' s in
  List.filter_map
    (fun line ->
      let line =
        if String.length line > 0 && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      if line = "" then None else Some (split_line line))
    lines

let write_row buf row =
  List.iteri
    (fun i cell ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf cell)
    row;
  Buffer.add_char buf '\n'

let to_string rows =
  let buf = Buffer.create 4096 in
  List.iter (write_row buf) rows;
  Buffer.contents buf

let write_file path rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let buf = Buffer.create 65536 in
      List.iter
        (fun row ->
          write_row buf row;
          if Buffer.length buf > 1_000_000 then begin
            Buffer.output_buffer oc buf;
            Buffer.clear buf
          end)
        rows;
      Buffer.output_buffer oc buf)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec loop acc =
        match input_line ic with
        | line -> loop (split_line line :: acc)
        | exception End_of_file -> List.rev acc
      in
      loop [])
