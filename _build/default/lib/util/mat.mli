(** Dense row-major float matrices with the linear algebra needed by the
    in-database learning tasks (Cholesky solve, power iteration, rank-1
    updates). *)

type t

val create : int -> int -> t
(** [create rows cols] is the zero matrix. *)

val init : int -> int -> (int -> int -> float) -> t
val identity : int -> t
val copy : t -> t
val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val update : t -> int -> int -> (float -> float) -> unit
val of_arrays : float array array -> t
val to_arrays : t -> float array array
val row : t -> int -> float array

val map : (float -> float) -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val add_in_place : t -> t -> unit
val transpose : t -> t
val matmul : t -> t -> t
val matvec : t -> float array -> float array

val ger : alpha:float -> float array -> float array -> t -> unit
(** [ger ~alpha x y m] performs the rank-1 update [m := m + alpha * x * y^T]. *)

exception Not_positive_definite

val cholesky : t -> t
(** Lower-triangular Cholesky factor of a symmetric positive-definite matrix.
    @raise Not_positive_definite otherwise. *)

val solve_spd : t -> float array -> float array
(** [solve_spd a b] solves [a x = b] for symmetric positive-definite [a]. *)

val frobenius : t -> float
val equal : ?eps:float -> t -> t -> bool
val is_symmetric : ?eps:float -> t -> bool

val power_iteration : ?iters:int -> ?eps:float -> t -> Vec.t -> float * Vec.t
(** Dominant eigenvalue/eigenvector by power iteration, seeded with the given
    start vector. *)

val pp : Format.formatter -> t -> unit
