lib/util/timing.ml: Format List Unix
