lib/util/timing.ml: Array Format List Obs Stdlib
