lib/util/prng.mli:
