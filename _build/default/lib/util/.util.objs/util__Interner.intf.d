lib/util/interner.mli:
