lib/util/mat.mli: Format Vec
