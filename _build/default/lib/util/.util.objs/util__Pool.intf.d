lib/util/pool.mli:
