lib/util/csvio.ml: Buffer Fun List String
