lib/util/mat.ml: Array Float Format Vec
