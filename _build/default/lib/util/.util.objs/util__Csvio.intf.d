lib/util/csvio.mli:
