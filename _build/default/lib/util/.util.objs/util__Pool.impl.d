lib/util/pool.ml: Array Atomic Domain List Stdlib Sys
