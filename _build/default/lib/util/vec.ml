(* Dense float vectors. Thin wrappers over [float array] used by the linear
   algebra in the ML layer and by the covariance ring. *)

type t = float array

let create n = Array.make n 0.0

let init = Array.init

let copy = Array.copy

let dim = Array.length

let of_array a = Array.copy a

let to_array v = Array.copy v

let get (v : t) i = v.(i)

let set (v : t) i x = v.(i) <- x

let fill (v : t) x = Array.fill v 0 (Array.length v) x

let add a b = Array.mapi (fun i x -> x +. b.(i)) a

let sub a b = Array.mapi (fun i x -> x -. b.(i)) a

let scale k a = Array.map (fun x -> k *. x) a

let add_in_place a b =
  for i = 0 to Array.length a - 1 do
    a.(i) <- a.(i) +. b.(i)
  done

let axpy ~alpha x y =
  (* y <- alpha * x + y *)
  for i = 0 to Array.length y - 1 do
    y.(i) <- (alpha *. x.(i)) +. y.(i)
  done

let dot a b =
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let norm2 a = sqrt (dot a a)

let norm_inf a = Array.fold_left (fun m x -> Stdlib.max m (Float.abs x)) 0.0 a

let map = Array.map

let mapi = Array.mapi

let equal ?(eps = 1e-9) a b =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri (fun i x -> if Float.abs (x -. b.(i)) > eps then ok := false) a;
      !ok)

let pp ppf v =
  Format.fprintf ppf "[";
  Array.iteri
    (fun i x -> Format.fprintf ppf (if i = 0 then "%.4g" else "; %.4g") x)
    v;
  Format.fprintf ppf "]"
