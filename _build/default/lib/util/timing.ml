(* Wall-clock timing helpers used by the benchmark harness. *)

let now () = Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let result = f () in
  let t1 = now () in
  (result, t1 -. t0)

let time_only f = snd (time f)

(* Median-of-[repeats] timing with one warm-up run; used by the macro
   benchmarks where a full Bechamel run would be too slow. *)
let measure ?(repeats = 3) ?(warmup = true) f =
  if warmup then ignore (f ());
  let samples = List.init repeats (fun _ -> time_only f) in
  let sorted = List.sort compare samples in
  List.nth sorted (repeats / 2)

let pp_duration ppf secs =
  if secs < 1e-6 then Format.fprintf ppf "%.0fns" (secs *. 1e9)
  else if secs < 1e-3 then Format.fprintf ppf "%.1fus" (secs *. 1e6)
  else if secs < 1.0 then Format.fprintf ppf "%.2fms" (secs *. 1e3)
  else Format.fprintf ppf "%.2fs" secs

let to_string secs = Format.asprintf "%a" pp_duration secs
