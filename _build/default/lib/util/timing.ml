(* Wall-clock timing helpers used by the benchmark harness.

   Readings come from the observability layer's monotonic clock
   (clock_gettime(CLOCK_MONOTONIC) where available, gettimeofday fallback),
   so intervals are immune to NTP steps and agree with [Obs] span timings. *)

let now () = Obs.Clock.now ()

let time f =
  let t0 = now () in
  let result = f () in
  let t1 = now () in
  (result, t1 -. t0)

let time_only f = snd (time f)

(* Median-of-[repeats] timing with one warm-up run; used by the macro
   benchmarks where a full Bechamel run would be too slow. Even [repeats]
   average the two middle samples. *)
let measure ?(repeats = 3) ?(warmup = true) f =
  if warmup then ignore (f ());
  let repeats = Stdlib.max 1 repeats in
  let samples = List.init repeats (fun _ -> time_only f) in
  let sorted = Array.of_list (List.sort compare samples) in
  let n = Array.length sorted in
  if n land 1 = 1 then sorted.(n / 2)
  else (sorted.((n / 2) - 1) +. sorted.(n / 2)) /. 2.0

let pp_duration ppf secs =
  if secs < 1e-6 then Format.fprintf ppf "%.0fns" (secs *. 1e9)
  else if secs < 1e-3 then Format.fprintf ppf "%.1fus" (secs *. 1e6)
  else if secs < 1.0 then Format.fprintf ppf "%.2fms" (secs *. 1e3)
  else Format.fprintf ppf "%.2fs" secs

let to_string secs = Format.asprintf "%a" pp_duration secs
