(* Update-stream generation for the IVM experiments (Figure 4 right): turn a
   generated database into a stream of single-tuple inserts against an
   initially empty database. Dimension tuples are interleaved early so the
   fact inserts find join partners, mirroring a live system's load order. *)

open Relational

(* All tuples of the database as inserts: dimensions first (round-robin),
   then the fact relation's tuples shuffled. [dimension_fraction] of the
   stream prefix is dimension data. *)
let inserts_of_database ?(seed = 1) (db : Database.t) =
  let rng = Util.Prng.create seed in
  let fact =
    List.fold_left
      (fun acc r ->
        match acc with
        | None -> Some r
        | Some best ->
            if Relation.cardinality r > Relation.cardinality best then Some r
            else acc)
      None (Database.relations db)
    |> Option.get
  in
  let dims = List.filter (fun r -> r != fact) (Database.relations db) in
  let dim_updates =
    List.concat_map
      (fun r ->
        List.map (fun t -> Fivm.Delta.insert (Relation.name r) t) (Relation.to_list r))
      dims
  in
  let dim_updates = Array.of_list dim_updates in
  Util.Prng.shuffle_in_place rng dim_updates;
  let fact_updates =
    Array.of_list
      (List.map (fun t -> Fivm.Delta.insert (Relation.name fact) t) (Relation.to_list fact))
  in
  Util.Prng.shuffle_in_place rng fact_updates;
  (* dimensions first: realistic reference-data-before-facts loading *)
  Array.to_list dim_updates @ Array.to_list fact_updates

(* A mixed insert/delete stream: after the initial load, [churn] fraction of
   fact tuples are deleted and re-inserted, exercising the additive
   inverse. *)
let with_churn ?(seed = 2) ?(churn = 0.1) (db : Database.t) =
  let rng = Util.Prng.create seed in
  let base = inserts_of_database ~seed db in
  let fact_inserts =
    List.filter
      (fun (u : Fivm.Delta.update) ->
        let r = Database.relation db u.relation in
        Relation.cardinality r
        = List.fold_left
            (fun acc r' -> Stdlib.max acc (Relation.cardinality r'))
            0 (Database.relations db))
      base
  in
  let victims =
    List.filter (fun _ -> Util.Prng.float rng 1.0 < churn) fact_inserts
  in
  base
  @ List.concat_map
      (fun (u : Fivm.Delta.update) ->
        [ Fivm.Delta.delete u.relation u.tuple; Fivm.Delta.insert u.relation u.tuple ])
      victims
