(** Synthetic TPC-DS-style dataset: a wide StoreSales fact joining
    DateDim/Item/Store/Customer (column subsets follow the TPC-DS spec's
    names — the width drives the paper's largest batch sizes). *)

type sizes = {
  n_dates : int;
  n_items : int;
  n_stores : int;
  n_customers : int;
  n_sales : int;
}

val sizes : ?scale:float -> unit -> sizes
val name : string
val generate : ?scale:float -> seed:int -> unit -> Relational.Database.t
val features : Aggregates.Feature.t
val mi_attrs : string list
val ivm_features : string list
