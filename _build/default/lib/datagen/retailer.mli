(** Schema-faithful synthetic stand-in for the paper's US-retailer dataset
    (Figures 2 and 3): Inventory fact + Items/Stores/Demographics/Weather
    dimensions in the paper's key-fkey snowflake, with a planted linear
    signal in the response. Deterministic per seed; cardinalities scale
    linearly with [scale] (1.0 ~ 1/1000 of the paper's absolute size). *)

type sizes = {
  n_locn : int;
  n_zip : int;
  n_dates : int;
  n_items : int;
  n_inventory : int;
}

val sizes : ?scale:float -> unit -> sizes
val name : string

val generate : ?scale:float -> seed:int -> unit -> Relational.Database.t

val features : Aggregates.Feature.t
(** Canonical feature map: response inventoryunits; weather flags and item
    taxonomy categorical; measures continuous; join keys excluded. *)

val mi_attrs : string list
(** Categorical attributes of the mutual-information workload. *)

val ivm_features : string list
(** Numeric features of the IVM / Figure 6 covariance experiments. *)
