lib/datagen/yelp.ml: Aggregates Array Column Database Gen_util List Relation Relational Util Value
