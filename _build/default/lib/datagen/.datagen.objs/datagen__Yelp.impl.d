lib/datagen/yelp.ml: Aggregates Array Database Gen_util List Relation Relational Util Value
