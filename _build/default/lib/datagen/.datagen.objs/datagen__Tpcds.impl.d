lib/datagen/tpcds.ml: Aggregates Array Column Database Gen_util List Relation Relational Stdlib Util Value
