lib/datagen/tpcds.ml: Aggregates Array Database Gen_util List Relation Relational Stdlib Util Value
