lib/datagen/favorita.mli: Aggregates Relational
