lib/datagen/stream_gen.mli: Fivm Relational
