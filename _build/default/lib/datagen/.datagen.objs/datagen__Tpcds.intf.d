lib/datagen/tpcds.mli: Aggregates Relational
