lib/datagen/gen_util.ml: Obs Relation Relational Schema Stdlib Value
