lib/datagen/gen_util.ml: Relation Relational Schema Stdlib Value
