lib/datagen/yelp.mli: Aggregates Relational
