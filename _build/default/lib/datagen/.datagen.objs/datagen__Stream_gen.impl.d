lib/datagen/stream_gen.ml: Array Database Fivm List Option Relation Relational Stdlib Util
