lib/datagen/retailer.mli: Aggregates Relational
