lib/datagen/retailer.ml: Aggregates Array Column Database Gen_util List Relation Relational Util Value
