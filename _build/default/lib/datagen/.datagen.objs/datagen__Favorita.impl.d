lib/datagen/favorita.ml: Aggregates Array Column Database Gen_util Relation Relational Util Value
