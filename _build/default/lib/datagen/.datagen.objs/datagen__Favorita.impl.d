lib/datagen/favorita.ml: Aggregates Array Database Gen_util Relation Relational Util Value
