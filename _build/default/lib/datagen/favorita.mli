(** Synthetic Corporación Favorita dataset (public Kaggle schema): Sales
    fact + Stores/Items/Transactions/Oil/Holidays. *)

type sizes = { n_stores : int; n_items : int; n_dates : int; n_sales : int }

val sizes : ?scale:float -> unit -> sizes
val name : string
val generate : ?scale:float -> seed:int -> unit -> Relational.Database.t
val features : Aggregates.Feature.t
val mi_attrs : string list
val ivm_features : string list
