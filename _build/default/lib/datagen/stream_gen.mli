(** Update-stream generation for the IVM experiments (Figure 4 right). *)

val inserts_of_database : ?seed:int -> Relational.Database.t -> Fivm.Delta.update list
(** All tuples as single-tuple inserts against an initially empty database:
    shuffled dimensions first (reference data before facts), then the
    shuffled fact. *)

val with_churn : ?seed:int -> ?churn:float -> Relational.Database.t -> Fivm.Delta.update list
(** The insert stream followed by delete/re-insert pairs for a [churn]
    fraction of fact tuples — exercises the additive inverse. *)
