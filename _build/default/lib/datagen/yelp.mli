(** Synthetic Yelp academic dataset: Review fact + Business/User/Attribute. *)

type sizes = { n_users : int; n_business : int; n_reviews : int }

val sizes : ?scale:float -> unit -> sizes
val name : string
val generate : ?scale:float -> seed:int -> unit -> Relational.Database.t
val features : Aggregates.Feature.t
val mi_attrs : string list
val ivm_features : string list
