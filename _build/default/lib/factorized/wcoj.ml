(* Worst-case optimal multiway join in the leapfrog-triejoin style
   (Veldhuizen [75]; Section 3.2's width-attaining algorithms).

   Relations are sorted tries following one GLOBAL variable order; at each
   variable the candidate values are the intersection of the branches of
   every relation containing it, computed by iterating the smallest branch
   set and binary-probing the others (galloping leapfrog seeks give the same
   asymptotics on our array tries). Unlike [Fjoin], no acyclicity is
   required: triangles and other cyclic patterns run within their AGM
   bound. Results fold with the same semiring algebra, so COUNT /
   SUM-PRODUCT / enumeration come for free.

   Trie levels are typed: levels over int columns keep their sorted values
   as a raw [int array] — built straight from the typed columns, intersected
   with unboxed int binary searches, boxed only when a branch actually
   matches — while float/string/promoted levels fall back to sorted
   [Value.t] arrays with the usual [Value.compare] probes. *)

open Relational

(* sorted trie: values in ascending order, one child per value *)
type vals =
  | VI of int array  (* int level, unboxed *)
  | VV of Value.t array  (* fallback level *)

type strie = { values : vals; children : node array }
and node = Leaf of int (* multiplicity *) | Sub of strie

let empty_strie = { values = VV [||]; children = [||] }
let vals_length = function VI a -> Array.length a | VV a -> Array.length a

let vals_get vals i =
  match vals with VI a -> Value.Int a.(i) | VV a -> a.(i)

(* Observability ([wcoj.*]): intersection work (binary-probe seeks, value
   advances on the iterated branch set) and materialised output size. *)
let c_seeks = Obs.counter "wcoj.seeks"
let c_advances = Obs.counter "wcoj.advances"
let c_materialised = Obs.counter "wcoj.materialised_tuples"

(* Build a sorted trie of [rel] nested by [attrs] (projection order): sort
   row indexes with a column-reading comparator, then group runs level by
   level. No tuples are materialised; int levels stay unboxed. *)
let build (rel : Relation.t) (attrs : string list) : strie =
  let schema = Relation.schema rel in
  let positions = Array.of_list (List.map (Schema.position schema) attrs) in
  let depth = Array.length positions in
  if depth = 0 then empty_strie
  else begin
    let n = Relation.cardinality rel in
    let all = Relation.scan rel in
    let datas = Array.map (fun p -> all.(p)) positions in
    let idx = Array.init n Fun.id in
    let cmp i1 i2 =
      let rec go d =
        if d = depth then 0
        else
          let c =
            match datas.(d) with
            | Column.Ints a -> Stdlib.compare (a.(i1) : int) a.(i2)
            | Column.Floats a -> Stdlib.compare (a.(i1) : float) a.(i2)
            | Column.Boxed a -> Value.compare a.(i1) a.(i2)
          in
          if c <> 0 then c else go (d + 1)
      in
      go 0
    in
    Array.sort cmp idx;
    let eq_at d i1 i2 =
      match datas.(d) with
      | Column.Ints a -> a.(i1) = a.(i2)
      | Column.Floats a -> a.(i1) = a.(i2)
      | Column.Boxed a -> Value.compare a.(i1) a.(i2) = 0
    in
    (* recursively group idx.(lo..hi) at level d *)
    let rec group lo hi d : strie =
      if d >= depth then empty_strie
      else begin
        let bounds = ref [] and i = ref lo in
        while !i < hi do
          let j = ref (!i + 1) in
          while !j < hi && eq_at d idx.(!i) idx.(!j) do
            incr j
          done;
          bounds := (!i, !j) :: !bounds;
          i := !j
        done;
        let bounds = Array.of_list (List.rev !bounds) in
        let children =
          Array.map
            (fun (lo', hi') ->
              if d = depth - 1 then Leaf (hi' - lo') else Sub (group lo' hi' (d + 1)))
            bounds
        in
        let values =
          match datas.(d) with
          | Column.Ints a -> VI (Array.map (fun (lo', _) -> a.(idx.(lo'))) bounds)
          | Column.Floats a ->
              VV (Array.map (fun (lo', _) -> Value.Float a.(idx.(lo'))) bounds)
          | Column.Boxed a -> VV (Array.map (fun (lo', _) -> a.(idx.(lo'))) bounds)
        in
        { values; children }
      end
    in
    group 0 n 0
  end

(* first index in the sorted array with value >= v, or length *)
let seek (values : Value.t array) (v : Value.t) =
  let lo = ref 0 and hi = ref (Array.length values) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Value.compare values.(mid) v < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let seek_int (values : int array) (x : int) =
  let lo = ref 0 and hi = ref (Array.length values) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if values.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo

(* Probe a level for a value (the all-int fast path boxes nothing). Both
   probes return the matching index or -1, so the leapfrog inner loop
   allocates no options. *)
let find_int_idx (vals : vals) (x : int) =
  Obs.incr c_seeks;
  match vals with
  | VI a ->
      let i = seek_int a x in
      if i < Array.length a && a.(i) = x then i else -1
  | VV a ->
      let v = Value.Int x in
      let i = seek a v in
      if i < Array.length a && Value.equal a.(i) v then i else -1

let find_value_idx (vals : vals) (v : Value.t) =
  Obs.incr c_seeks;
  match vals with
  | VI a -> (
      match v with
      | Value.Int x ->
          let i = seek_int a x in
          if i < Array.length a && a.(i) = x then i else -1
      | _ -> -1 (* int levels hold only ints; cross-type never equal *))
  | VV a ->
      let i = seek a v in
      if i < Array.length a && Value.equal a.(i) v then i else -1

(* Default global variable order: most-shared variables first (a common
   WCOJ heuristic; any order is correct). *)
let default_order (rels : Relation.t list) : string list =
  let count a =
    List.length (List.filter (fun r -> Schema.mem (Relation.schema r) a) rels)
  in
  let attrs =
    List.sort_uniq compare
      (List.concat_map (fun r -> Schema.names (Relation.schema r)) rels)
  in
  List.sort
    (fun a b ->
      match compare (count b) (count a) with 0 -> compare a b | c -> c)
    attrs

(* The generic traversal: same algebra as [Fjoin]. *)
let fold (type a) (alg : a Fjoin.algebra) ?order (rels : Relation.t list) : a =
  let order = match order with Some o -> o | None -> default_order rels in
  (* per relation: its attrs as a subsequence of the global order *)
  let tries =
    List.map
      (fun rel ->
        let attrs =
          List.filter (fun v -> Schema.mem (Relation.schema rel) v) order
        in
        (attrs, build rel attrs))
      rels
  in
  (* cursor = remaining attrs + current trie position *)
  let rec visit (vars : string list)
      (cursors : (string list * node) list) : a =
    match vars with
    | [] ->
        (* all variables bound: multiply the leaf multiplicities *)
        let m =
          List.fold_left
            (fun acc (_, n) ->
              match n with Leaf k -> acc * k | Sub _ -> assert false)
            1 cursors
        in
        alg.mult m alg.unit_
    | var :: rest_vars ->
        let involved, waiting =
          List.partition
            (fun (attrs, _) -> match attrs with a :: _ -> a = var | [] -> false)
            cursors
        in
        if involved = [] then raise (Fjoin.Unconstrained_variable var)
        else begin
          let tries_at =
            List.map
              (fun (attrs, n) ->
                match n with
                | Sub t -> (List.tl attrs, t)
                | Leaf _ -> assert false)
              involved
          in
          (* iterate the smallest branch set, probe the others *)
          let (first_rest, first_t), others =
            match
              List.sort
                (fun (_, t1) (_, t2) ->
                  compare (vals_length t1.values) (vals_length t2.values))
                tries_at
            with
            | smallest :: others -> (smallest, Array.of_list others)
            | [] -> assert false
          in
          let no = Array.length others in
          (* probe results for the current candidate; early exit on the
             first miss means the remaining branch sets are not probed *)
          let hits = Array.make no (-1) in
          let branches = ref [] in
          let emit v i =
            Obs.incr c_advances;
            let advanced = ref waiting in
            for j = no - 1 downto 0 do
              let rest, t = others.(j) in
              advanced := (rest, t.children.(hits.(j))) :: !advanced
            done;
            let sub =
              visit rest_vars
                ((first_rest, first_t.children.(i)) :: !advanced)
            in
            branches := (v, sub) :: !branches
          in
          let probe_all_int x =
            let ok = ref true and j = ref 0 in
            while !ok && !j < no do
              let _, t = others.(!j) in
              let h = find_int_idx t.values x in
              if h < 0 then ok := false
              else begin
                hits.(!j) <- h;
                incr j
              end
            done;
            !ok
          in
          let probe_all_value v =
            let ok = ref true and j = ref 0 in
            while !ok && !j < no do
              let _, t = others.(!j) in
              let h = find_value_idx t.values v in
              if h < 0 then ok := false
              else begin
                hits.(!j) <- h;
                incr j
              end
            done;
            !ok
          in
          (match first_t.values with
          | VI a ->
              (* all-int leapfrog: probe with raw ints, box on match only *)
              for i = 0 to Array.length a - 1 do
                let x = a.(i) in
                if probe_all_int x then emit (Value.Int x) i
              done
          | VV a ->
              for i = 0 to Array.length a - 1 do
                if probe_all_value a.(i) then emit a.(i) i
              done);
          alg.union var (List.rev !branches)
        end
  in
  (* keep only order variables actually covered by some relation *)
  let covered =
    List.filter
      (fun v -> List.exists (fun r -> Schema.mem (Relation.schema r) v) rels)
      order
  in
  visit covered (List.map (fun (attrs, t) -> (attrs, Sub t)) tries)

let count ?order rels : int =
  fold (Fjoin.semiring_algebra (module Rings.Instances.Nat) ~lift:(fun _ _ -> 1))
    ?order rels

let eval_semiring (type a) ?order (module S : Rings.Sig.SEMIRING with type t = a)
    ?lift rels : a =
  let lift = match lift with Some f -> f | None -> fun _ _ -> S.one in
  fold (Fjoin.semiring_algebra (module S) ~lift) ?order rels

(* Materialise the (possibly cyclic) join as a relation over the order's
   covered variables — the paper's footnote-4 bag materialisation that turns
   a cyclic query acyclic. *)
let materialise ?(name = "wcoj") ?order (rels : Relation.t list) : Relation.t =
  Obs.with_span "wcoj.materialise" @@ fun () ->
  let order = match order with Some o -> o | None -> default_order rels in
  let covered =
    List.filter
      (fun v -> List.exists (fun r -> Schema.mem (Relation.schema r) v) rels)
      order
  in
  let ty_of v =
    let rel = List.find (fun r -> Schema.mem (Relation.schema r) v) rels in
    Schema.ty_of (Relation.schema rel) v
  in
  let schema = Schema.make (List.map (fun v -> (v, ty_of v)) covered) in
  let out = Relation.create name schema in
  let frep = fold Fjoin.frep_algebra ~order rels in
  List.iter
    (fun env ->
      Relation.append out
        (Array.of_list
           (List.map
              (fun v ->
                match List.assoc_opt v env with Some x -> x | None -> Value.Null)
              covered)))
    (Frep.enumerate frep);
  Obs.add c_materialised (Relation.cardinality out);
  out
