(* Worst-case optimal multiway join in the leapfrog-triejoin style
   (Veldhuizen [75]; Section 3.2's width-attaining algorithms).

   Relations are sorted tries following one GLOBAL variable order; at each
   variable the candidate values are the intersection of the branches of
   every relation containing it, computed by iterating the smallest branch
   set and binary-probing the others (galloping leapfrog seeks give the same
   asymptotics on our array tries). Unlike [Fjoin], no acyclicity is
   required: triangles and other cyclic patterns run within their AGM
   bound. Results fold with the same semiring algebra, so COUNT /
   SUM-PRODUCT / enumeration come for free. *)

open Relational

(* sorted trie: values in ascending order, one child per value *)
type strie = { values : Value.t array; children : node array }
and node = Leaf of int (* multiplicity *) | Sub of strie

let empty_strie = { values = [||]; children = [||] }

(* Observability ([wcoj.*]): intersection work (binary-probe seeks, value
   advances on the iterated branch set) and materialised output size. *)
let c_seeks = Obs.counter "wcoj.seeks"
let c_advances = Obs.counter "wcoj.advances"
let c_materialised = Obs.counter "wcoj.materialised_tuples"

(* Build a sorted trie of [rel] nested by [attrs] (projection order). *)
let build (rel : Relation.t) (attrs : string list) : strie =
  let schema = Relation.schema rel in
  let positions = Array.of_list (List.map (Schema.position schema) attrs) in
  let depth = Array.length positions in
  let rows =
    Array.init (Relation.cardinality rel) (fun i ->
        Tuple.project (Relation.get rel i) positions)
  in
  Array.sort Tuple.compare rows;
  (* recursively group rows.(lo..hi) at level d *)
  let rec group lo hi d : strie =
    if d >= depth then empty_strie
    else begin
      let values = ref [] and children = ref [] in
      let i = ref lo in
      while !i < hi do
        let v = rows.(!i).(d) in
        let j = ref !i in
        while !j < hi && Value.equal rows.(!j).(d) v do
          incr j
        done;
        values := v :: !values;
        children :=
          (if d = depth - 1 then Leaf (!j - !i) else Sub (group !i !j (d + 1)))
          :: !children;
        i := !j
      done;
      {
        values = Array.of_list (List.rev !values);
        children = Array.of_list (List.rev !children);
      }
    end
  in
  if depth = 0 then empty_strie else group 0 (Array.length rows) 0

(* first index in the sorted array with value >= v, or length *)
let seek (values : Value.t array) (v : Value.t) =
  let lo = ref 0 and hi = ref (Array.length values) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Value.compare values.(mid) v < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let find (values : Value.t array) (v : Value.t) =
  Obs.incr c_seeks;
  let i = seek values v in
  if i < Array.length values && Value.equal values.(i) v then Some i else None

(* Default global variable order: most-shared variables first (a common
   WCOJ heuristic; any order is correct). *)
let default_order (rels : Relation.t list) : string list =
  let count a =
    List.length (List.filter (fun r -> Schema.mem (Relation.schema r) a) rels)
  in
  let attrs =
    List.sort_uniq compare
      (List.concat_map (fun r -> Schema.names (Relation.schema r)) rels)
  in
  List.sort
    (fun a b ->
      match compare (count b) (count a) with 0 -> compare a b | c -> c)
    attrs

(* The generic traversal: same algebra as [Fjoin]. *)
let fold (type a) (alg : a Fjoin.algebra) ?order (rels : Relation.t list) : a =
  let order = match order with Some o -> o | None -> default_order rels in
  (* per relation: its attrs as a subsequence of the global order *)
  let tries =
    List.map
      (fun rel ->
        let attrs =
          List.filter (fun v -> Schema.mem (Relation.schema rel) v) order
        in
        (attrs, build rel attrs))
      rels
  in
  (* cursor = remaining attrs + current trie position *)
  let rec visit (vars : string list)
      (cursors : (string list * node) list) : a =
    match vars with
    | [] ->
        (* all variables bound: multiply the leaf multiplicities *)
        let m =
          List.fold_left
            (fun acc (_, n) ->
              match n with Leaf k -> acc * k | Sub _ -> assert false)
            1 cursors
        in
        alg.mult m alg.unit_
    | var :: rest_vars ->
        let involved, waiting =
          List.partition
            (fun (attrs, _) -> match attrs with a :: _ -> a = var | [] -> false)
            cursors
        in
        if involved = [] then raise (Fjoin.Unconstrained_variable var)
        else begin
          let tries_at =
            List.map
              (fun (attrs, n) ->
                match n with
                | Sub t -> (List.tl attrs, t)
                | Leaf _ -> assert false)
              involved
          in
          (* iterate the smallest branch set, probe the others *)
          let (first_rest, first_t), others =
            match
              List.sort
                (fun (_, t1) (_, t2) ->
                  compare (Array.length t1.values) (Array.length t2.values))
                tries_at
            with
            | smallest :: others -> (smallest, others)
            | [] -> assert false
          in
          let branches = ref [] in
          Array.iteri
            (fun i v ->
              let probes =
                List.map (fun (rest, t) -> (rest, t, find t.values v)) others
              in
              if List.for_all (fun (_, _, hit) -> hit <> None) probes then begin
                Obs.incr c_advances;
                let advanced =
                  (first_rest, first_t.children.(i))
                  :: List.map
                       (fun (rest, t, hit) ->
                         (rest, t.children.(Option.get hit)))
                       probes
                in
                let sub = visit rest_vars (advanced @ waiting) in
                branches := (v, sub) :: !branches
              end)
            first_t.values;
          alg.union var (List.rev !branches)
        end
  in
  (* keep only order variables actually covered by some relation *)
  let covered =
    List.filter
      (fun v -> List.exists (fun r -> Schema.mem (Relation.schema r) v) rels)
      order
  in
  visit covered (List.map (fun (attrs, t) -> (attrs, Sub t)) tries)

let count ?order rels : int =
  fold (Fjoin.semiring_algebra (module Rings.Instances.Nat) ~lift:(fun _ _ -> 1))
    ?order rels

let eval_semiring (type a) ?order (module S : Rings.Sig.SEMIRING with type t = a)
    ?lift rels : a =
  let lift = match lift with Some f -> f | None -> fun _ _ -> S.one in
  fold (Fjoin.semiring_algebra (module S) ~lift) ?order rels

(* Materialise the (possibly cyclic) join as a relation over the order's
   covered variables — the paper's footnote-4 bag materialisation that turns
   a cyclic query acyclic. *)
let materialise ?(name = "wcoj") ?order (rels : Relation.t list) : Relation.t =
  Obs.with_span "wcoj.materialise" @@ fun () ->
  let order = match order with Some o -> o | None -> default_order rels in
  let covered =
    List.filter
      (fun v -> List.exists (fun r -> Schema.mem (Relation.schema r) v) rels)
      order
  in
  let ty_of v =
    let rel = List.find (fun r -> Schema.mem (Relation.schema r) v) rels in
    Schema.ty_of (Relation.schema rel) v
  in
  let schema = Schema.make (List.map (fun v -> (v, ty_of v)) covered) in
  let out = Relation.create name schema in
  let frep = fold Fjoin.frep_algebra ~order rels in
  List.iter
    (fun env ->
      Relation.append out
        (Array.of_list
           (List.map
              (fun v ->
                match List.assoc_opt v env with Some x -> x | None -> Value.Null)
              covered)))
    (Frep.enumerate frep);
  Obs.add c_materialised (Relation.cardinality out);
  out
