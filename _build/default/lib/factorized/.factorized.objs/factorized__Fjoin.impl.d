lib/factorized/fjoin.ml: Array Column Frep Fun Hashtbl Keypack List Obs Relation Relational Rings Schema Value Var_order
