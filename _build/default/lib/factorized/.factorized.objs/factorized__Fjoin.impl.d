lib/factorized/fjoin.ml: Array Frep Hashtbl List Obs Relation Relational Rings Schema Tuple Value Var_order
