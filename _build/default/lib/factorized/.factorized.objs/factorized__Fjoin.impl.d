lib/factorized/fjoin.ml: Array Frep Hashtbl List Relation Relational Rings Schema Tuple Value Var_order
