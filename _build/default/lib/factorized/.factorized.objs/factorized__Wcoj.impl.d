lib/factorized/wcoj.ml: Array Fjoin Frep List Option Relation Relational Rings Schema Tuple Value
