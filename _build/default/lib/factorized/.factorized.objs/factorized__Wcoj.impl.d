lib/factorized/wcoj.ml: Array Fjoin Frep List Obs Option Relation Relational Rings Schema Tuple Value
