lib/factorized/wcoj.ml: Array Column Fjoin Frep Fun List Obs Relation Relational Rings Schema Stdlib Value
