lib/factorized/wcoj.mli: Fjoin Relation Relational Rings Value
