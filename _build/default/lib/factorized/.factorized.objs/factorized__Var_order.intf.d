lib/factorized/var_order.mli: Format Join_tree Relation Relational
