lib/factorized/faggregate.mli: Frep Map Relational Rings Value
