lib/factorized/faggregate.ml: Frep Hashtbl List Map Obj Printf Relational Rings String Value
