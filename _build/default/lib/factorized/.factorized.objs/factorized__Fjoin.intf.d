lib/factorized/fjoin.mli: Frep Hashtbl Keypack Relation Relational Rings Value Var_order
