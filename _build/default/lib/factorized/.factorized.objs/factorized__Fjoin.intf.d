lib/factorized/fjoin.mli: Frep Hashtbl Relation Relational Rings Value Var_order
