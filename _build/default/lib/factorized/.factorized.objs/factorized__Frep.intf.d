lib/factorized/frep.mli: Format Relation Relational Value
