lib/factorized/frep.ml: Array Format Hashtbl List Obj Relation Relational Schema Value
