lib/factorized/var_order.ml: Format Join_tree List Relation Relational Schema String
