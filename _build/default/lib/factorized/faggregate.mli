(** Aggregates over factorised representations (Figures 9 and 10): semiring
    folds of {!Frep.t} with per-variable value re-mapping, and the lifting of
    any semiring to k-relations for GROUP BY evaluation. *)

open Relational

val nat_mul : (module Rings.Sig.SEMIRING with type t = 'a) -> int -> 'a -> 'a
(** [nat_mul (module S) m x] is the m-fold sum of [x] (by doubling). *)

val eval :
  (module Rings.Sig.SEMIRING with type t = 'a) ->
  lift:(string -> Value.t -> 'a) ->
  Frep.t ->
  'a
(** Fold an f-rep in a semiring; physically shared subtrees are evaluated
    once, so time is proportional to the DAG size. *)

val count : Frep.t -> int
(** COUNT: every value maps to 1 in the natural-number semiring. *)

val sum_product : vars:string list -> Frep.t -> float
(** SUM of the product of the named variables (others map to 1). *)

(** K-relations over a semiring [S]: maps from group-by assignments (sorted
    [(attr, value)] lists over disjoint variables) to [S] values. Itself a
    semiring, so it plugs into {!eval} — this is how one factorised pass
    evaluates GROUP BY aggregates (the sparse-tensor encoding of §2.1). *)
module Grouped (S : Rings.Sig.SEMIRING) : sig
  module Key : sig
    type t = (string * Value.t) list

    val compare : t -> t -> int
  end

  module KMap : Map.S with type key = Key.t

  type t = S.t KMap.t

  val zero : t
  val one : t
  val add : t -> t -> t
  val mul : t -> t -> t
  (** Cross product over disjoint variables; coinciding merged keys are
      added. *)

  val equal : t -> t -> bool
  val to_string : t -> string

  val singleton : string -> Value.t -> S.t -> t
  (** [singleton var value s] is the one-assignment map [{var=value} -> s]. *)

  val bindings : t -> (Key.t * S.t) list
end

(** [Grouped] at the reals: the workhorse instance used by the engines. *)
module Grouped_float : sig
  module Key : sig
    type t = (string * Value.t) list

    val compare : t -> t -> int
  end

  module KMap : Map.S with type key = Key.t

  type t = float KMap.t

  val zero : t
  val one : t
  val add : t -> t -> t
  val mul : t -> t -> t
  val equal : t -> t -> bool
  val to_string : t -> string
  val singleton : string -> Value.t -> float -> t
  val bindings : t -> (Key.t * float) list
end

val sum_grouped :
  group_by:string list ->
  vars:string list ->
  Frep.t ->
  ((string * Value.t) list * float) list
(** [SUM(prod vars) GROUP BY group_by] in one pass over the f-rep. *)
