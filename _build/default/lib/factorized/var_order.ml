(* Variable orders (d-trees) for factorised query evaluation (Section 5.1,
   Figure 8 left).

   A variable order is a rooted tree over the query's attributes such that
   the attributes of every relation lie along one root-to-leaf path. Each
   variable is adorned with its "key": the subset of its ancestors on which
   its subtree depends (co-occurs with, in some relation). Variables whose
   key is a strict subset of their ancestors head conditionally independent
   subtrees — the source of factorisation's succinctness and of subtree
   caching (e.g. price depends on item but not on dish). *)

open Relational

type t = {
  var : string;
  key : string list; (* ancestors the subtree rooted here depends on *)
  children : t list;
}

let rec vars t = t.var :: List.concat_map vars t.children

let rec fold f acc t = List.fold_left (fold f) (f acc t) t.children

(* Attributes of [rel] must appear on a single root-to-leaf path of [t]. *)
let valid_for t rels =
  let rec paths node =
    match node.children with
    | [] -> [ [ node.var ] ]
    | cs -> List.concat_map (fun c -> List.map (fun p -> node.var :: p) (paths c)) cs
  in
  let all_paths = paths t in
  List.for_all
    (fun rel ->
      let attrs = Schema.names (Relation.schema rel) in
      List.exists
        (fun path -> List.for_all (fun a -> List.mem a path) attrs)
        all_paths)
    rels

(* Key adornments: key(x) = ancestors(x) that share a relation with some
   variable in x's subtree. *)
let compute_keys rels root =
  let co_occur a b =
    List.exists
      (fun rel ->
        let s = Relation.schema rel in
        Schema.mem s a && Schema.mem s b)
      rels
  in
  let rec adorn ancestors node =
    let children = List.map (adorn (node.var :: ancestors)) node.children in
    let subtree_vars = node.var :: List.concat_map vars children in
    let key =
      List.filter
        (fun anc -> List.exists (fun v -> co_occur anc v) subtree_vars)
        (List.rev ancestors)
    in
    { node with key; children }
  in
  adorn [] root

(* Synthesis from a join tree. Each relation contributes its not-yet-placed
   attributes as a chain; a child relation's chain is attached at the deepest
   variable of its join key, giving Figure-8-style branching for
   conditionally independent parts. Attribute order within a relation places
   more widely shared attributes higher (so join keys come first). *)
let of_join_tree rels (jt_root : Join_tree.node) =
  let sharing a =
    List.length
      (List.filter (fun r -> Schema.mem (Relation.schema r) a) rels)
  in
  (* Build the order as a mutable tree of (var, children ref). *)
  let module M = struct
    type mnode = { v : string; mutable kids : mnode list }
  end in
  let open M in
  (* For each join-tree node we have the root-to-node path of placed
     variables (deepest last); new vars chain under the attachment point. *)
  let rec place (jt : Join_tree.node) (path : mnode list) : mnode option =
    let attrs = Schema.names (Relation.schema jt.rel) in
    let fresh =
      List.filter (fun a -> not (List.exists (fun m -> m.v = a) path)) attrs
    in
    let fresh =
      List.sort
        (fun a b ->
          let c = compare (sharing b) (sharing a) in
          if c <> 0 then c else compare a b)
        fresh
    in
    (* Attachment point: deepest path variable among this relation's attrs
       (they are all on the path by induction); None if path is empty or the
       relation shares nothing with it (Cartesian component). *)
    let attach =
      List.fold_left
        (fun acc m -> if List.mem m.v attrs then Some m else acc)
        None path
    in
    (* Chain the fresh variables. *)
    let chain_root, chain_path =
      match fresh with
      | [] -> (None, path)
      | first :: rest ->
          let head = { v = first; kids = [] } in
          let deepest =
            List.fold_left
              (fun parent v ->
                let n = { v; kids = [] } in
                parent.kids <- n :: parent.kids;
                n)
              head rest
          in
          ignore deepest;
          (* rebuild path: original path extended by the chain *)
          let rec chain_nodes n = n :: List.concat_map chain_nodes n.kids in
          (Some head, path @ chain_nodes head)
    in
    (match (attach, chain_root) with
    | Some parent, Some head -> parent.kids <- head :: parent.kids
    | _ -> ());
    (* Recurse into join-tree children along the extended path. *)
    List.iter
      (fun child ->
        match place child chain_path with
        | None -> ()
        | Some orphan -> (
            (* child shares nothing with the path: attach under the deepest
               node available to keep a single tree (Cartesian branch) *)
            match List.rev chain_path with
            | last :: _ -> last.kids <- orphan :: last.kids
            | [] -> failwith "Var_order.of_join_tree: empty order"))
      jt.children;
    match (attach, chain_root) with
    | None, Some head -> Some head (* new root or orphan *)
    | _ -> None
  in
  let root =
    match place jt_root [] with
    | Some r -> r
    | None -> failwith "Var_order.of_join_tree: root relation has no attributes"
  in
  let rec freeze (m : mnode) =
    { var = m.v; key = []; children = List.map freeze (List.rev m.kids) }
  in
  compute_keys rels (freeze root)

let of_relations rels =
  let jt = Join_tree.build rels in
  of_join_tree rels (Join_tree.tree jt)

let rec pp ppf t =
  Format.fprintf ppf "@[<v 2>%s{%s}" t.var (String.concat "," t.key);
  List.iter (fun c -> Format.fprintf ppf "@,%a" pp c) t.children;
  Format.fprintf ppf "@]"
