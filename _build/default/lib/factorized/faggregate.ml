(* Aggregates over factorised representations (Figures 9 and 10).

   Two evaluation styles:
   - [eval] folds an already-built [Frep.t] in a semiring, re-mapping values
     per variable exactly as Figure 9 does (values to 1 for COUNT, kept for
     SUM, etc.);
   - [Grouped] lifts any semiring S to the semiring of S-annotated relations
     (k-relations over S), which evaluates GROUP BY aggregates in one pass —
     the sparse-tensor encoding of categorical features (Section 2.1). *)

open Relational

let nat_mul (type a) (module S : Rings.Sig.SEMIRING with type t = a) m (x : a) : a =
  let rec go m =
    if m <= 0 then S.zero
    else if m = 1 then x
    else
      let half = go (m / 2) in
      let dbl = S.add half half in
      if m land 1 = 1 then S.add dbl x else dbl
  in
  go m

(* Fold an f-rep in a semiring; [lift var v] is the image of a value. Shared
   subtrees (physically equal nodes) are evaluated once via memoisation on
   physical identity — aggregate time is proportional to the DAG size. *)
let eval (type a) (module S : Rings.Sig.SEMIRING with type t = a)
    ~(lift : string -> Value.t -> a) (f : Frep.t) : a =
  let module H = Hashtbl.Make (struct
    type t = Obj.t

    let equal = ( == )
    let hash = Hashtbl.hash
  end) in
  let memo = H.create 256 in
  let rec go (f : Frep.t) : a =
    match f with
    | Frep.Unit -> S.one
    | Frep.Scalar k -> nat_mul (module S) k S.one
    | Frep.Union (var, branches) ->
        let compute () =
          List.fold_left
            (fun acc (v, sub) -> S.add acc (S.mul (lift var v) (go sub)))
            S.zero branches
        in
        memoised f compute
    | Frep.Prod fs ->
        let compute () = List.fold_left (fun acc g -> S.mul acc (go g)) S.one fs in
        memoised f compute
  and memoised f compute =
    let key = Obj.repr f in
    match H.find_opt memo key with
    | Some r -> r
    | None ->
        let r = compute () in
        H.add memo key r;
        r
  in
  go f

let count f = eval (module Rings.Instances.Nat) ~lift:(fun _ _ -> 1) f

let sum_product ~vars f =
  eval
    (module Rings.Instances.R)
    ~lift:(fun var v -> if List.mem var vars then Value.to_float v else 1.0)
    f

(* K-relations over a semiring: maps from group-by assignments to S values.
   Assignments are sorted (var, value) lists over disjoint variable sets, so
   the product concatenates assignments and multiplies annotations. This is
   itself a semiring, so it plugs into [eval] and [Fjoin.eval_semiring]. *)
module Grouped (S : Rings.Sig.SEMIRING) = struct
  module Key = struct
    type t = (string * Value.t) list

    let compare (a : t) (b : t) =
      let rec go a b =
        match (a, b) with
        | [], [] -> 0
        | [], _ -> -1
        | _, [] -> 1
        | (xa, va) :: ra, (xb, vb) :: rb ->
            let c = compare xa xb in
            if c <> 0 then c
            else
              let c = Value.compare va vb in
              if c <> 0 then c else go ra rb
      in
      go a b
  end

  module KMap = Map.Make (Key)

  type t = S.t KMap.t

  let zero = KMap.empty
  let one = KMap.singleton [] S.one

  let add a b =
    KMap.union (fun _ x y -> Some (S.add x y)) a b

  (* merge two assignments over disjoint variables, keeping sortedness *)
  let merge_keys a b =
    List.sort (fun (x, _) (y, _) -> compare x y) (a @ b)

  let mul a b =
    KMap.fold
      (fun ka va acc ->
        KMap.fold
          (fun kb vb acc ->
            let k = merge_keys ka kb in
            let v = S.mul va vb in
            KMap.update k
              (function None -> Some v | Some v0 -> Some (S.add v0 v))
              acc)
          b acc)
      a KMap.empty

  let equal a b = KMap.equal S.equal a b

  let to_string t =
    String.concat "; "
      (List.map
         (fun (k, v) ->
           Printf.sprintf "{%s} -> %s"
             (String.concat ","
                (List.map (fun (x, u) -> x ^ "=" ^ Value.to_string u) k))
             (S.to_string v))
         (KMap.bindings t))

  let singleton var value annot = KMap.singleton [ (var, value) ] annot

  let bindings (t : t) = KMap.bindings t
end

module Grouped_float = Grouped (Rings.Instances.R)

(* SUM(prod of [vars]) GROUP BY [group_by], evaluated in one pass over the
   f-rep via the k-relation semiring. Result: sorted assignment -> sum. *)
let sum_grouped ~group_by ~vars f =
  let lift var v : Grouped_float.t =
    let weight = if List.mem var vars then Value.to_float v else 1.0 in
    if List.mem var group_by then Grouped_float.singleton var v weight
    else Grouped_float.KMap.singleton [] weight
  in
  Grouped_float.bindings (eval (module Grouped_float) ~lift f)
