(* Factorised representations of query results (Section 5.1, Figure 8 right).

   An f-rep is a DAG built from unions over the values of a variable,
   products of conditionally independent parts, and integer multiplicities
   (bag semantics). With subtree caching enabled, shared sub-representations
   (e.g. the price of an item, independent of the dish) are physically
   shared, turning the tree into a DAG — the paper's "factorised
   representation with definitions". *)

open Relational

type t =
  | Unit (* the empty product: one tuple of zero attributes *)
  | Scalar of int (* bag multiplicity *)
  | Union of string * (Value.t * t) list (* branches over values of a variable *)
  | Prod of t list

let empty var = Union (var, [])

(* Number of values: each branch value counts once; shared (physically equal)
   subtrees count once — the paper's size measure for factorised results. *)
let value_count t =
  (* Physical-identity table: [Hashtbl.hash] buckets structurally (equal
     structures share buckets) while [==] distinguishes distinct nodes, so
     only genuinely shared subtrees are skipped. *)
  let module H = Hashtbl.Make (struct
    type t = Obj.t

    let equal = ( == )
    let hash = Hashtbl.hash
  end) in
  let seen = H.create 256 in
  let physically_new node =
    let r = Obj.repr node in
    if Obj.is_block r && H.mem seen r then false
    else begin
      if Obj.is_block r then H.add seen r ();
      true
    end
  in
  let rec go acc node =
    if not (physically_new node) then acc
    else
      match node with
      | Unit | Scalar _ -> acc
      | Union (_, branches) ->
          List.fold_left (fun acc (_, sub) -> go (acc + 1) sub) acc branches
      | Prod fs -> List.fold_left go acc fs
  in
  go 0 t

(* Number of tuples represented (with multiplicities). *)
let rec tuple_count = function
  | Unit -> 1
  | Scalar k -> k
  | Union (_, branches) ->
      List.fold_left (fun acc (_, sub) -> acc + tuple_count sub) 0 branches
  | Prod fs -> List.fold_left (fun acc f -> acc * tuple_count f) 1 fs

(* Enumerate the represented tuples as assignments (with multiplicities
   expanded); exponential in general — used by tests against flat joins. *)
let enumerate t =
  let rec go = function
    | Unit -> [ [] ]
    | Scalar k -> List.concat (List.init k (fun _ -> [ [] ]))
    | Union (var, branches) ->
        List.concat_map
          (fun (v, sub) -> List.map (fun env -> (var, v) :: env) (go sub))
          branches
    | Prod fs ->
        List.fold_left
          (fun acc f ->
            let envs = go f in
            List.concat_map (fun env -> List.map (fun e -> env @ e) envs) acc)
          [ [] ] fs
  in
  go t

(* Convert to a flat relation over the given attribute order. *)
let to_relation ?(name = "flat") attr_order tys t =
  let schema =
    Schema.of_list (List.map2 (fun a ty -> Schema.attr a ty) attr_order tys)
  in
  let rel = Relation.create name schema in
  List.iter
    (fun env ->
      Relation.append rel
        (Array.of_list
           (List.map
              (fun a ->
                match List.assoc_opt a env with
                | Some v -> v
                | None -> Value.Null)
              attr_order)))
    (enumerate t);
  rel

let rec pp ppf = function
  | Unit -> Format.fprintf ppf "()"
  | Scalar k -> Format.fprintf ppf "%d" k
  | Union (var, branches) ->
      Format.fprintf ppf "@[<v 2>U_%s(" var;
      List.iteri
        (fun i (v, sub) ->
          if i > 0 then Format.fprintf ppf "@,";
          Format.fprintf ppf "%a x %a" Value.pp v pp sub)
        branches;
      Format.fprintf ppf ")@]"
  | Prod fs ->
      Format.fprintf ppf "@[<hov 1>(";
      List.iteri
        (fun i f ->
          if i > 0 then Format.fprintf ppf " *@ ";
          pp ppf f)
        fs;
      Format.fprintf ppf ")@]"
