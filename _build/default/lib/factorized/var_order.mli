(** Variable orders (d-trees) for factorised evaluation: rooted trees over
    the query's attributes such that each relation's attributes lie on one
    root-to-leaf path, adorned with dependency keys (Figure 8 left). *)

open Relational

type t = {
  var : string;
  key : string list;
      (** ancestors on which the subtree rooted here depends — a strict
          subset of the ancestors signals conditional independence and
          enables caching *)
  children : t list;
}

val vars : t -> string list
(** Pre-order variable list. *)

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a

val valid_for : t -> Relation.t list -> bool
(** Every relation's attributes lie on a single root-to-leaf path. *)

val compute_keys : Relation.t list -> t -> t
(** Recompute the key adornments from relation schemas. *)

val of_join_tree : Relation.t list -> Join_tree.node -> t
(** Synthesise an order from a rooted join tree; shared attributes are placed
    high so join keys come first. *)

val of_relations : Relation.t list -> t
(** Build the join tree and synthesise an order. @raise Join_tree.Cyclic *)

val pp : Format.formatter -> t -> unit
