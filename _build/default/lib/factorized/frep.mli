(** Factorised representations of query results (Section 5.1, Figure 8):
    DAGs of unions over a variable's values, products of conditionally
    independent parts, and bag multiplicities. *)

open Relational

type t =
  | Unit  (** the empty product: one tuple of zero attributes *)
  | Scalar of int  (** bag multiplicity *)
  | Union of string * (Value.t * t) list  (** branches over a variable's values *)
  | Prod of t list  (** conditionally independent parts *)

val empty : string -> t
(** The empty union over a variable: no tuples. *)

val value_count : t -> int
(** Number of values in the representation, counting physically shared
    subtrees once — the paper's factorisation-size measure. *)

val tuple_count : t -> int
(** Number of represented tuples, with multiplicities. *)

val enumerate : t -> (string * Value.t) list list
(** All represented tuples as assignments (multiplicities expanded).
    Exponential in general; meant for tests against flat joins. *)

val to_relation : ?name:string -> string list -> Value.ty list -> t -> Relation.t
(** Flatten into a relation over the given attribute order/types. *)

val pp : Format.formatter -> t -> unit
