(* Factorised join computation (Section 5.1).

   Relations are first converted to tries following the variable order (each
   relation's attributes lie on one root-to-leaf path, so the order induces a
   total order on its attributes). The join is then computed by one recursive
   descent over the variable order that intersects the tries' branches at
   each variable — a leapfrog-style multiway intersection — and combines the
   results with a caller-supplied algebra:

     - building [Frep.t] gives the factorised join (with optional caching of
       conditionally independent subtrees, turning the tree into a DAG);
     - folding with a semiring gives fused join-aggregate evaluation that
       never materialises the join (Figure 9), in time proportional to the
       factorisation size.

   Trie levels are hybrid: dictionary-encoded int values (read straight out
   of the typed columns, never boxed) hash in an int-keyed table, while
   floats/strings/nulls fall back to a [Value.t]-keyed table. Routing
   depends only on the value, so the same logical branch always lands on the
   same side in every relation's trie and intersection probes one side only.

   For acyclic queries and orders from [Var_order.of_join_tree] this runs in
   time O(input + factorised-output), the factorisation-width guarantee. *)

open Relational

module VTbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

module Itbl = Keypack.Itbl

type trie = Leaf of int | Node of vtbl
and vtbl = { ints : trie Itbl.t; others : trie VTbl.t }

let vtbl_create n = { ints = Itbl.create n; others = VTbl.create 4 }
let vtbl_length t = Itbl.length t.ints + VTbl.length t.others

(* Observability ([factorized.*]): the work and output-size measures of the
   factorised engine — iterator advances during the multiway intersection
   and the d-representation size of built factorisations. *)
let c_advances = Obs.counter "factorized.iterator_advances"
let c_drep_values = Obs.counter "factorized.drep_values"

(* Build a relation's trie following [attr_order] (its attributes sorted by
   depth in the variable order), reading the typed columns directly.
   Leaves count bag multiplicities. *)
let build_trie rel attr_order =
  let schema = Relation.schema rel in
  let positions = Array.of_list (List.map (Schema.position schema) attr_order) in
  let arity = Array.length positions in
  let all = Relation.scan rel in
  let datas = Array.map (fun p -> all.(p)) positions in
  let root = vtbl_create 64 in
  let rec insert table j i =
    let last = j = arity - 1 in
    match datas.(j) with
    | Column.Ints a -> insert_int table j i last a.(i)
    | Column.Floats a -> insert_val table j i last (Value.Float a.(i))
    | Column.Boxed a -> (
        match a.(i) with
        | Value.Int x -> insert_int table j i last x
        | v -> insert_val table j i last v)
  and insert_int table j i last x =
    if last then
      match Itbl.find_opt table.ints x with
      | Some (Leaf m) -> Itbl.replace table.ints x (Leaf (m + 1))
      | Some (Node _) -> assert false
      | None -> Itbl.add table.ints x (Leaf 1)
    else
      let sub =
        match Itbl.find_opt table.ints x with
        | Some (Node t) -> t
        | Some (Leaf _) -> assert false
        | None ->
            let t = vtbl_create 8 in
            Itbl.add table.ints x (Node t);
            t
      in
      insert sub (j + 1) i
  and insert_val table j i last v =
    if last then
      match VTbl.find_opt table.others v with
      | Some (Leaf m) -> VTbl.replace table.others v (Leaf (m + 1))
      | Some (Node _) -> assert false
      | None -> VTbl.add table.others v (Leaf 1)
    else
      let sub =
        match VTbl.find_opt table.others v with
        | Some (Node t) -> t
        | Some (Leaf _) -> assert false
        | None ->
            let t = vtbl_create 8 in
            VTbl.add table.others v (Node t);
            t
      in
      insert sub (j + 1) i
  in
  if arity > 0 then
    for i = 0 to Relation.cardinality rel - 1 do
      insert root 0 i
    done;
  root

(* Algebra the traversal folds with. *)
type 'a algebra = {
  unit_ : 'a; (* empty product: a single scope-less tuple *)
  mult : int -> 'a -> 'a; (* bag multiplicity applied to a subresult *)
  union : string -> (Value.t * 'a) list -> 'a; (* branches of a variable *)
  prod : 'a list -> 'a; (* conditionally independent parts *)
}

let frep_algebra : Frep.t algebra =
  {
    unit_ = Frep.Unit;
    mult =
      (fun m f ->
        if m = 1 then f
        else
          match f with
          | Frep.Unit -> Frep.Scalar m
          | Frep.Scalar k -> Frep.Scalar (m * k)
          | f -> Frep.Prod [ Frep.Scalar m; f ]);
    union =
      (fun var branches ->
        (* deterministic value order for printing and tests *)
        let sorted =
          List.sort (fun (a, _) (b, _) -> Value.compare a b) branches
        in
        Frep.Union (var, sorted));
    prod =
      (fun fs ->
        match List.filter (fun f -> f <> Frep.Unit) fs with
        | [] -> Frep.Unit
        | [ f ] -> f
        | fs -> Frep.Prod fs);
  }

(* Semiring fold algebra: [lift var v] is the semiring image of a value
   (Figure 9's per-value re-mapping). *)
let semiring_algebra (type a) (module S : Rings.Sig.SEMIRING with type t = a)
    ~(lift : string -> Value.t -> a) : a algebra =
  let rec nat_mul m x =
    (* m-fold sum by doubling *)
    if m <= 0 then S.zero
    else if m = 1 then x
    else
      let half = nat_mul (m / 2) x in
      let dbl = S.add half half in
      if m land 1 = 1 then S.add dbl x else dbl
  in
  {
    unit_ = S.one;
    mult = nat_mul;
    union =
      (fun var branches ->
        List.fold_left
          (fun acc (v, sub) -> S.add acc (S.mul (lift var v) sub))
          S.zero branches);
    prod = (fun xs -> List.fold_left S.mul S.one xs);
  }

(* Internal preprocessed form of the variable order. *)
type node = {
  var : string;
  key : string list;
  id : int;
  children : node list;
  subtree : (string, unit) Hashtbl.t; (* vars in this subtree *)
}

let preprocess order =
  let counter = ref 0 in
  let rec go (o : Var_order.t) =
    let id = !counter in
    incr counter;
    let children = List.map go o.children in
    let subtree = Hashtbl.create 8 in
    Hashtbl.replace subtree o.var ();
    List.iter
      (fun c -> Hashtbl.iter (fun v () -> Hashtbl.replace subtree v ()) c.subtree)
      children;
    { var = o.var; key = o.key; id; children; subtree }
  in
  let root = go order in
  (root, !counter)

type cursor = { rel_id : int; trie : trie; remaining : string list }

exception Unconstrained_variable of string

(* The generic traversal. *)
let fold (type a) ?(cache = true) (alg : a algebra) rels (order : Var_order.t) : a =
  let root, n_nodes = preprocess order in
  (* depth of each variable: position on its root-to-leaf path *)
  let depth = Hashtbl.create 32 in
  let rec depths d (n : node) =
    Hashtbl.replace depth n.var d;
    List.iter (depths (d + 1)) n.children
  in
  depths 0 root;
  let cursors =
    List.mapi
      (fun rel_id rel ->
        let attrs =
          List.sort
            (fun a b -> compare (Hashtbl.find depth a) (Hashtbl.find depth b))
            (Schema.names (Relation.schema rel))
        in
        { rel_id; trie = Node (build_trie rel attrs); remaining = attrs })
      rels
  in
  let bound : (string, Value.t) Hashtbl.t = Hashtbl.create 32 in
  (* one cache table per variable-order node, keyed on the packed binding of
     the node's dependency key *)
  let caches : a Keypack.Hybrid.t array =
    Array.init n_nodes (fun _ -> Keypack.Hybrid.create 64)
  in
  let cache_positions : int array array =
    Array.make n_nodes [||]
  in
  let rec fill_positions (n : node) =
    cache_positions.(n.id) <- Array.init (List.length n.key) Fun.id;
    List.iter fill_positions n.children
  in
  fill_positions root;
  let rec visit (n : node) (cs : cursor list) : a =
    let compute () =
      (* Partition cursors: those whose next attribute is n.var. *)
      let involved, waiting =
        List.partition
          (fun c -> match c.remaining with a :: _ -> a = n.var | [] -> false)
          cs
      in
      if involved = [] then raise (Unconstrained_variable n.var);
      let tables =
        List.map
          (fun c ->
            match c.trie with
            | Node t -> (c, t)
            | Leaf _ -> assert false)
          involved
      in
      (* iterate the smallest branch set, probe the others *)
      let (first_c, first_t), rest =
        match
          List.sort
            (fun (_, t1) (_, t2) -> compare (vtbl_length t1) (vtbl_length t2))
            tables
        with
        | smallest :: rest -> (smallest, rest)
        | [] -> assert false
      in
      let branches = ref [] in
      let emit v sub_first matches =
        Obs.incr c_advances;
        (* advance all involved cursors on v *)
        let advanced =
          { first_c with trie = sub_first; remaining = List.tl first_c.remaining }
          :: List.map
               (fun (c, m) ->
                 match m with
                 | Some trie -> { c with trie; remaining = List.tl c.remaining }
                 | None -> assert false)
               matches
        in
        let finished, continuing =
          List.partition (fun c -> c.remaining = []) advanced
        in
        let multiplicity =
          List.fold_left
            (fun acc c ->
              match c.trie with Leaf m -> acc * m | Node _ -> assert false)
            1 finished
        in
        let live = continuing @ waiting in
        Hashtbl.replace bound n.var v;
        let sub_result =
          match n.children with
          | [] ->
              assert (live = []);
              alg.unit_
          | children ->
              let parts =
                List.map
                  (fun child ->
                    let mine =
                      List.filter
                        (fun c ->
                          match c.remaining with
                          | a :: _ -> Hashtbl.mem child.subtree a
                          | [] -> false)
                        live
                    in
                    visit child mine)
                  children
              in
              alg.prod parts
        in
        Hashtbl.remove bound n.var;
        branches := (v, alg.mult multiplicity sub_result) :: !branches
      in
      (* int-valued branches: intersect int tables, boxing only on emit *)
      Itbl.iter
        (fun x sub_first ->
          let matches =
            List.map (fun (c, t) -> (c, Itbl.find_opt t.ints x)) rest
          in
          if List.for_all (fun (_, m) -> m <> None) matches then
            emit (Value.Int x) sub_first matches)
        first_t.ints;
      (* fallback branches: floats / strings / nulls *)
      VTbl.iter
        (fun v sub_first ->
          let matches =
            List.map (fun (c, t) -> (c, VTbl.find_opt t.others v)) rest
          in
          if List.for_all (fun (_, m) -> m <> None) matches then
            emit v sub_first matches)
        first_t.others;
      alg.union n.var (List.rev !branches)
    in
    if not cache then compute ()
    else begin
      (* Cache on the values of the node's dependency key: subtrees with
         equal key bindings are shared (the DAG edges of Figure 8, e.g.
         price cached per item across dishes). *)
      let cache_key = Array.of_list (List.map (Hashtbl.find bound) n.key) in
      let k = Keypack.key_of_tuple cache_positions.(n.id) cache_key in
      let table = caches.(n.id) in
      match Keypack.Hybrid.find_opt table k with
      | Some r -> r
      | None ->
          let r = compute () in
          Keypack.Hybrid.add table k r;
          r
    end
  in
  visit root cursors

let factorize ?cache rels order =
  Obs.with_span "factorized.factorize" @@ fun () ->
  let f = fold ?cache frep_algebra rels order in
  if Obs.is_enabled () then Obs.add c_drep_values (Frep.value_count f);
  f

(* Fused join-aggregate: evaluate the query in a semiring without building
   the f-rep. [lift] defaults to the constant [one] (pure counting shape). *)
let eval_semiring (type a) ?cache (module S : Rings.Sig.SEMIRING with type t = a)
    ?lift rels order : a =
  let lift = match lift with Some f -> f | None -> fun _ _ -> S.one in
  Obs.with_span "factorized.eval_semiring" @@ fun () ->
  fold ?cache (semiring_algebra (module S) ~lift) rels order

(* Convenience: COUNT of the join. *)
let count ?cache rels order =
  eval_semiring ?cache (module Rings.Instances.Nat) rels order

(* Convenience: SUM of a product of numeric variables over the join. *)
let sum_product ?cache rels order ~vars =
  eval_semiring ?cache
    (module Rings.Instances.R)
    ~lift:(fun var v -> if List.mem var vars then Value.to_float v else 1.0)
    rels order
