(** Worst-case optimal multiway join (leapfrog-triejoin style, [75]):
    sorted-trie intersection down one global variable order. Handles CYCLIC
    queries (triangles and beyond) within their AGM bound, unlike the
    acyclic-only {!Fjoin}. *)

open Relational

(** Sorted branch values of one trie level: int levels stay unboxed. *)
type vals = VI of int array | VV of Value.t array

type strie = { values : vals; children : node array }
and node = Leaf of int | Sub of strie

val build : Relation.t -> string list -> strie
(** Sorted trie of the relation nested by the given attribute order, built
    from the typed columns without materialising tuples. *)

val seek : Value.t array -> Value.t -> int
(** First index with value >= v (binary search), or the array length. *)

val seek_int : int array -> int -> int
(** Unboxed variant of {!seek} for int levels. *)

val default_order : Relation.t list -> string list
(** Most-shared variables first (any order is correct). *)

val fold : 'a Fjoin.algebra -> ?order:string list -> Relation.t list -> 'a
(** The generic traversal, with {!Fjoin}'s algebra.
    @raise Fjoin.Unconstrained_variable if the order has uncovered gaps. *)

val count : ?order:string list -> Relation.t list -> int

val eval_semiring :
  ?order:string list ->
  (module Rings.Sig.SEMIRING with type t = 'a) ->
  ?lift:(string -> Value.t -> 'a) ->
  Relation.t list ->
  'a

val materialise : ?name:string -> ?order:string list -> Relation.t list -> Relation.t
(** The full join as a relation — the paper's footnote-4 bag
    materialisation that turns cyclic queries acyclic for the downstream
    engines. *)
