(* Monotonic wall clock (C stub over clock_gettime, gettimeofday fallback).
   The origin is unspecified; only differences between readings are
   meaningful. *)

external now : unit -> float = "obs_monotonic_s"

let elapsed_since t0 = now () -. t0
