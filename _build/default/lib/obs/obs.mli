(** Engine-wide observability: hierarchical spans (wall clock + minor-heap
    allocation), a process-global registry of named counters / gauges /
    histograms, a pluggable sink, a tree reporter and a JSON exporter.

    Everything is gated on one {!set_enabled} flag checked first in every
    operation, so instrumented engines pay a single load-and-branch per event
    when observability is off. Counter updates are atomic and span nesting is
    tracked per domain, so instrumentation inside [Util.Pool] workers is
    safe.

    Naming convention: [<engine>.<quantity>], e.g. [lmfao.views],
    [fivm.delta_tuples], [wcoj.seeks] (see README "Observability"). *)

module Clock : module type of Clock
module Json : module type of Json

(** {1 Enablement} *)

val set_enabled : bool -> unit
val is_enabled : unit -> bool

val with_enabled : bool -> (unit -> 'a) -> 'a
(** Run with observability forced on/off, restoring the previous state. *)

(** {1 Counters}

    Monotone event counts. Handles are interned by name: the registry lookup
    happens once at handle creation (typically module initialisation), and
    {!add} on the hot path is a branch plus an atomic add. *)

type counter

val counter : string -> counter
(** Find-or-create the counter registered under [name]. *)

val add : counter -> int -> unit
val incr : counter -> unit
val counter_value : counter -> int

val counter_value_by_name : string -> int
(** 0 for unregistered names (tests and reporters). *)

(** {1 Gauges} *)

type gauge

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms}

    Streaming summaries (count / sum / min / max) of observed values. *)

type histogram

val histogram : string -> histogram
val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

(** {1 Spans} *)

type span

val with_span : string -> (unit -> 'a) -> 'a
(** Run the thunk inside a named span: wall-clock seconds via {!Clock} and
    allocation via [Gc.minor_words] are recorded on both edges, and the span
    nests under the innermost open span of the current domain (or becomes a
    report root). When disabled this is exactly [f ()]. Exceptions still
    close the span. *)

val span_name : span -> string
val span_seconds : span -> float
val span_minor_words : span -> float
val span_children : span -> span list
val spans : unit -> span list
(** Finished top-level spans, oldest first. *)

(** {1 Sinks}

    Streaming notification of span edges, e.g. for live tracing. The
    default {!null_sink} does nothing; accumulation into the registry for
    {!pp_report} / {!to_json} happens regardless of the sink. *)

type sink = {
  on_span_start : span -> unit;
  on_span_end : span -> unit;  (** timings and allocations are final here *)
}

val null_sink : sink
val set_sink : sink -> unit

(** {1 Snapshot, report, export} *)

val reset : unit -> unit
(** Zero all counter/gauge/histogram values and drop recorded spans; the
    registered handles stay valid. *)

val counter_snapshot : unit -> (string * int) list
(** Non-zero counters, sorted by name. *)

val pp_report : Format.formatter -> unit -> unit
(** Human-readable span tree plus non-zero counters/gauges/histograms. *)

val to_json : unit -> Json.t
val json_string : unit -> string

val write_file : string -> unit
(** Write {!json_string} (newline-terminated) to a file. *)
