/* Monotonic clock for the observability layer.

   CLOCK_MONOTONIC when the platform has it (Linux/macOS/BSD), otherwise
   gettimeofday — callers only ever subtract two readings, so a non-epoch
   origin is fine and preferred (immune to NTP steps). */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>
#include <sys/time.h>

CAMLprim value obs_monotonic_s(value unit)
{
#if defined(CLOCK_MONOTONIC)
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9);
#endif
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return caml_copy_double((double)tv.tv_sec + (double)tv.tv_usec * 1e-6);
  }
}
