lib/obs/obs.mli: Clock Format Json
