lib/obs/obs.ml: Atomic Clock Domain Format Fun Gc Hashtbl Json List Mutex
