lib/obs/clock.mli:
