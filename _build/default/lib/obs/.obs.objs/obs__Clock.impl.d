lib/obs/clock.ml:
