lib/obs/json.mli:
