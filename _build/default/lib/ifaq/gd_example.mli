(** The Section 5.3 worked example: gradient descent for linear regression
    over S(i,s,u) |><| R(s,c) |><| I(i,p) as an IFAQ program, its
    transformation ladder, and small random instances to run it on. *)

val features : string list
val alpha : float
val iterations : int

val join_expr : Expr.expr
(** Q as a triple-nested Sigma of guarded singleton dictionaries. *)

val theta0 : Expr.expr
val update : Expr.expr
val original : Expr.expr
(** The paper's starting program: [let Q = ... in iterate ...]. *)

val fused_views_program : Expr.expr
(** The final stage after aggregate extraction, pushdown past the joins,
    view fusion and trie conversion: per-relation fused views WR/WI and M
    entries that scan S probing them (constructed following the paper's
    derivation; semantically equal to every other stage). *)

val all_stages : unit -> (string * Expr.expr) list
(** The mechanical [Rewrite.pipeline] stages, the mechanical
    [Rewrite.aggregate_pushdown] applied on top, and the hand-derived fused
    final form. *)

val relations :
  ?n_s:int -> ?n_keys:int -> seed:int -> unit -> (string * Interp.value) list
(** Random instances of S, R, I as interpreter relation values. *)
