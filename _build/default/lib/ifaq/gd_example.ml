(* The Section 5.3 worked example: gradient descent for linear regression
   over the join Q = S(i,s,u) |><| R(s,c) |><| I(i,p), expressed as an IFAQ
   program and taken through the transformation pipeline.

   [original] is the paper's starting program (the response u rides along in
   the tuples; following the paper we keep the displayed objective
   sum_x Q(x) * (sum_f2 theta(f2) x(f2)) * x(f1), which exercises exactly
   the same data-intensive structure). [stage_pushdown] is the final form
   after aggregate extraction, pushdown past the joins, view fusion and trie
   conversion — constructed following the paper's derivation; the rewrite
   pipeline of [Rewrite] produces the intermediate stages mechanically.
   Tests check that EVERY stage evaluates to the same parameters. *)

open Expr

let features = [ "i"; "s"; "c"; "p" ]

let alpha = 0.0005
let iterations = 8

(* Q = sum_xs sum_xr sum_xi { {i;s;c;p;u} ->
       S(xs)*R(xr)*I(xi)*[xs.i=xi.i]*[xs.s=xr.s] } *)
let join_expr =
  Sum
    ( "xs",
      Rel "S",
      Sum
        ( "xr",
          Rel "R",
          Sum
            ( "xi",
              Rel "I",
              Sing
                ( Rec
                    [
                      ("i", Field (Var "xs", "i"));
                      ("s", Field (Var "xs", "s"));
                      ("c", Field (Var "xr", "c"));
                      ("p", Field (Var "xi", "p"));
                      ("u", Field (Var "xs", "u"));
                    ],
                  Mul
                    ( Lookup (Rel "S", Var "xs"),
                      Mul
                        ( Lookup (Rel "R", Var "xr"),
                          Mul
                            ( Lookup (Rel "I", Var "xi"),
                              Mul
                                ( Eq (Field (Var "xs", "i"), Field (Var "xi", "i")),
                                  Eq (Field (Var "xs", "s"), Field (Var "xr", "s"))
                                ) ) ) ) ) ) ) )

let theta0 = Lam ("f", Set features, Num 1.0)

(* one update:  theta' = lam_{f1 in F} theta(f1) -
     alpha * sum_{x in sup(Q)} Q(x) * (sum_{f2 in F} theta(f2)*x(f2)) * x(f1) *)
let update =
  Lam
    ( "f1",
      Set features,
      Sub
        ( Lookup (Var "theta", Var "f1"),
          Mul
            ( Num alpha,
              Sum
                ( "x",
                  Var "Q",
                  Mul
                    ( Lookup (Var "Q", Var "x"),
                      Mul
                        ( Sum
                            ( "f2",
                              Set features,
                              Mul (Lookup (Var "theta", Var "f2"), Lookup (Var "x", Var "f2"))
                            ),
                          Lookup (Var "x", Var "f1") ) ) ) ) ) )

let original =
  Let
    ( "Q",
      join_expr,
      Iter { times = iterations; var = "theta"; init = theta0; body = update } )

(* ---- the final stage: aggregate pushdown + fusion + trie conversion ----

   M_{f1,f2} factorises through the join tree S - R, S - I: the R- and
   I-side sums are pushed into fused views

     WR = sum_xr R(xr) * { xr.s -> {cnt=1, c=xr.c, cc=xr.c^2} }
     WI = sum_xi I(xi) * { xi.i -> {cnt=1, p=xi.p, pp=xi.p^2} }

   and each M entry is one scan of S probing the views. *)

let owner f = match f with "c" -> `R | "p" -> `I | _ -> `S

(* view component to read on each side for the (f1, f2) entry *)
let component side f1 f2 =
  let owned f = owner f = side in
  match (owned f1, owned f2) with
  | true, true -> (match side with `R -> "cc" | `I -> "pp" | `S -> assert false)
  | true, false | false, true -> (
      match side with `R -> "c" | `I -> "p" | `S -> assert false)
  | false, false -> "cnt"

let fused_views_program =
  let wr =
    Sum
      ( "xr",
        Rel "R",
        Mul
          ( Lookup (Rel "R", Var "xr"),
            Sing
              ( Field (Var "xr", "s"),
                Rec
                  [
                    ("cnt", Num 1.0);
                    ("c", Field (Var "xr", "c"));
                    ("cc", Mul (Field (Var "xr", "c"), Field (Var "xr", "c")));
                  ] ) ) )
  in
  let wi =
    Sum
      ( "xi",
        Rel "I",
        Mul
          ( Lookup (Rel "I", Var "xi"),
            Sing
              ( Field (Var "xi", "i"),
                Rec
                  [
                    ("cnt", Num 1.0);
                    ("p", Field (Var "xi", "p"));
                    ("pp", Mul (Field (Var "xi", "p"), Field (Var "xi", "p")));
                  ] ) ) )
  in
  let local f =
    (* the S-side factor of feature f for the current xs *)
    if owner f = `S then Some (Field (Var "xs", f)) else None
  in
  let entry f1 f2 =
    let factors =
      List.filter_map Fun.id [ local f1; local f2 ]
      @ [
          Field (Lookup (Var "WR", Field (Var "xs", "s")), component `R f1 f2);
          Field (Lookup (Var "WI", Field (Var "xs", "i")), component `I f1 f2);
        ]
    in
    Sum
      ( "xs",
        Rel "S",
        List.fold_left (fun acc g -> Mul (acc, g)) (Lookup (Rel "S", Var "xs")) factors
      )
  in
  let m =
    Rec
      (List.map
         (fun f1 -> (f1, Rec (List.map (fun f2 -> (f2, entry f1 f2)) features)))
         features)
  in
  (* the specialised convergence loop over record-typed theta and M *)
  let theta0_rec = Rec (List.map (fun f -> (f, Num 1.0)) features) in
  let inner f1 =
    let dot =
      List.map
        (fun f2 ->
          Mul (Field (Var "theta", f2), Field (Field (Var "M", f1), f2)))
        features
    in
    match dot with
    | [] -> Num 0.0
    | d :: ds -> List.fold_left (fun acc g -> Add (acc, g)) d ds
  in
  let update_rec =
    Rec
      (List.map
         (fun f1 ->
           (f1, Sub (Field (Var "theta", f1), Mul (Num alpha, inner f1))))
         features)
  in
  Let
    ( "WR",
      wr,
      Let
        ( "WI",
          wi,
          Let
            ( "M",
              m,
              Iter { times = iterations; var = "theta"; init = theta0_rec; body = update_rec }
            ) ) )

(* the full ladder: the mechanical [Rewrite] stages, the MECHANICAL
   aggregate pushdown applied on top of them, and the hand-derived fused
   final form (view fusion + trie conversion) *)
let all_stages () : (string * expr) list =
  let mechanical = Rewrite.pipeline original in
  let last = snd (List.nth mechanical (List.length mechanical - 1)) in
  mechanical
  @ [
      ("aggregate pushdown (mechanical)", Rewrite.aggregate_pushdown last);
      ("view fusion + trie conversion (hand-derived)", fused_views_program);
    ]

(* ---- example data ---- *)

(* small random instances of S(i,s,u), R(s,c), I(i,p) *)
let relations ?(n_s = 40) ?(n_keys = 6) ~seed () =
  let rng = Util.Prng.create seed in
  let num x = Interp.VNum x in
  let tuple fields = Interp.VRec (List.sort compare fields) in
  let dict_of_list entries =
    (* merge duplicates *)
    let c = Interp.fresh_counters () in
    List.fold_left
      (fun acc e -> Interp.value_add c acc (Interp.VDict [ e ]))
      (Interp.VDict []) entries
  in
  let s_rel =
    dict_of_list
      (List.init n_s (fun _ ->
           ( tuple
               [
                 ("i", num (float_of_int (Util.Prng.int rng n_keys)));
                 ("s", num (float_of_int (Util.Prng.int rng n_keys)));
                 ("u", num (Util.Prng.float_range rng 0.0 2.0));
               ],
             num 1.0 )))
  in
  let r_rel =
    dict_of_list
      (List.init n_keys (fun k ->
           ( tuple
               [
                 ("s", num (float_of_int k));
                 ("c", num (Util.Prng.float_range rng 0.0 2.0));
               ],
             num 1.0 )))
  in
  let i_rel =
    dict_of_list
      (List.init n_keys (fun k ->
           ( tuple
               [
                 ("i", num (float_of_int k));
                 ("p", num (Util.Prng.float_range rng 0.0 2.0));
               ],
             num 1.0 )))
  in
  [ ("S", s_rel); ("R", r_rel); ("I", i_rel) ]
