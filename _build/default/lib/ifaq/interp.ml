(* Interpreter for IFAQ expressions, with operation counters.

   The counters (arithmetic operations, dictionary operations, loop-body
   executions) are the cost model behind the Figure 11 ablation: every
   equivalence-preserving transformation must keep the RESULT identical
   while driving the counters down. Dictionaries are sparse: entries with
   value zero are dropped on merge (the multiplicities-as-ring view of
   Section 3.1). *)

type value =
  | VNum of float
  | VSym of string
  | VRec of (string * value) list (* fields sorted by name *)
  | VDict of (value * value) list (* assoc, keys distinct, sorted *)

type counters = {
  mutable arith : int; (* + - * and guard comparisons *)
  mutable dict_ops : int; (* lookups and singleton merges *)
  mutable iterations : int; (* loop-body executions (Sum/Lam/Iter) *)
}

let fresh_counters () = { arith = 0; dict_ops = 0; iterations = 0 }

let total c = c.arith + c.dict_ops + c.iterations

exception Type_error of string

let type_error fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

let rec value_compare a b =
  match (a, b) with
  | VNum x, VNum y -> compare x y
  | VNum _, _ -> -1
  | _, VNum _ -> 1
  | VSym x, VSym y -> compare x y
  | VSym _, _ -> -1
  | _, VSym _ -> 1
  | VRec x, VRec y ->
      List.compare
        (fun (n1, v1) (n2, v2) ->
          match compare n1 n2 with 0 -> value_compare v1 v2 | c -> c)
        x y
  | VRec _, _ -> -1
  | _, VRec _ -> 1
  | VDict x, VDict y ->
      List.compare
        (fun (k1, v1) (k2, v2) ->
          match value_compare k1 k2 with 0 -> value_compare v1 v2 | c -> c)
        x y

let rec is_zero = function
  | VNum x -> x = 0.0
  | VRec fields -> List.for_all (fun (_, v) -> is_zero v) fields
  | VDict [] -> true
  | _ -> false

(* pointwise addition of values (numbers, records fieldwise, dictionaries
   keywise with sparse zero-elimination) *)
let rec value_add c a b =
  match (a, b) with
  | VNum x, VNum y ->
      c.arith <- c.arith + 1;
      VNum (x +. y)
  | VRec x, VRec y ->
      VRec (List.map2 (fun (n, v) (n', v') ->
                if n <> n' then type_error "record add: field mismatch"
                else (n, value_add c v v'))
              x y)
  | VDict x, VDict y ->
      (* merge sorted assoc lists *)
      let rec merge x y =
        match (x, y) with
        | [], r | r, [] -> r
        | (kx, vx) :: rx, (ky, vy) :: ry -> (
            match value_compare kx ky with
            | 0 ->
                c.dict_ops <- c.dict_ops + 1;
                let v = value_add c vx vy in
                if is_zero v then merge rx ry else (kx, v) :: merge rx ry
            | n when n < 0 -> (kx, vx) :: merge rx y
            | _ -> (ky, vy) :: merge x ry)
      in
      VDict (merge x y)
  | _ -> type_error "add: incompatible values"

let value_sub c a b =
  match (a, b) with
  | VNum x, VNum y ->
      c.arith <- c.arith + 1;
      VNum (x -. y)
  | _ -> type_error "sub: expects numbers"

(* multiplication: numbers, or number * structured (scaling) *)
let rec value_mul c a b =
  match (a, b) with
  | VNum x, VNum y ->
      c.arith <- c.arith + 1;
      VNum (x *. y)
  | VNum _, VRec fields -> VRec (List.map (fun (n, v) -> (n, value_mul c a v)) fields)
  | VRec fields, VNum _ -> VRec (List.map (fun (n, v) -> (n, value_mul c v b)) fields)
  | VNum _, VDict entries ->
      VDict
        (List.filter_map
           (fun (k, v) ->
             let v = value_mul c a v in
             if is_zero v then None else Some (k, v))
           entries)
  | VDict entries, VNum _ ->
      VDict
        (List.filter_map
           (fun (k, v) ->
             let v = value_mul c v b in
             if is_zero v then None else Some (k, v))
           entries)
  | _ -> type_error "mul: incompatible values"

let rec zero_like = function
  | VNum _ -> VNum 0.0
  | VSym _ -> VNum 0.0
  | VRec fields -> VRec (List.map (fun (n, v) -> (n, zero_like v)) fields)
  | VDict _ -> VDict []

type env = {
  vars : (string * value) list;
  relations : (string * value) list; (* name -> VDict *)
}

let bind env v x = { env with vars = (v, x) :: env.vars }

let lookup_var env v =
  match List.assoc_opt v env.vars with
  | Some x -> x
  | None -> type_error "unbound variable %s" v

let support = function
  | VDict entries -> List.map fst entries
  | v ->
      ignore v;
      type_error "sup() of a non-dictionary"

let rec eval (c : counters) (env : env) (e : Expr.expr) : value =
  match e with
  | Expr.Num x -> VNum x
  | Expr.Sym s -> VSym s
  | Expr.Var v -> lookup_var env v
  | Expr.Rec fields ->
      VRec
        (List.sort
           (fun (a, _) (b, _) -> compare a b)
           (List.map (fun (n, e) -> (n, eval c env e)) fields))
  | Expr.Field (e, f) -> (
      c.dict_ops <- c.dict_ops + 1;
      match eval c env e with
      | VRec fields -> (
          match List.assoc_opt f fields with
          | Some v -> v
          | None -> type_error "missing field %s" f)
      | _ -> type_error "field access on non-record")
  | Expr.Set syms -> VDict (List.map (fun s -> (VSym s, VNum 1.0)) (List.sort compare syms))
  | Expr.Rel r -> (
      match List.assoc_opt r env.relations with
      | Some d -> d
      | None -> type_error "unknown relation %s" r)
  | Expr.Lookup (d, k) -> (
      c.dict_ops <- c.dict_ops + 1;
      let key = eval c env k in
      match eval c env d with
      | VDict entries -> (
          match List.find_opt (fun (k', _) -> value_compare key k' = 0) entries with
          | Some (_, v) -> v
          | None -> VNum 0.0 (* sparse default *))
      | VRec fields -> (
          (* dynamic field access by symbolic key *)
          match key with
          | VSym f -> (
              match List.assoc_opt f fields with
              | Some v -> v
              | None -> type_error "missing field %s" f)
          | _ -> type_error "record lookup needs a symbolic key")
      | _ -> type_error "lookup on non-dictionary")
  | Expr.Lam (v, src, body) ->
      let keys = support (eval c env src) in
      VDict
        (List.filter_map
           (fun k ->
             c.iterations <- c.iterations + 1;
             let r = eval c (bind env v k) body in
             if is_zero r then None else Some (k, r))
           keys)
  | Expr.Sum (v, src, body) ->
      let keys = support (eval c env src) in
      let acc = ref None in
      List.iter
        (fun k ->
          c.iterations <- c.iterations + 1;
          let r = eval c (bind env v k) body in
          acc := Some (match !acc with None -> r | Some a -> value_add c a r))
        keys;
      (match !acc with Some a -> a | None -> VNum 0.0)
  | Expr.Sing (k, v) ->
      c.dict_ops <- c.dict_ops + 1;
      let key = eval c env k and value = eval c env v in
      if is_zero value then VDict [] else VDict [ (key, value) ]
  | Expr.Add (a, b) -> value_add c (eval c env a) (eval c env b)
  | Expr.Sub (a, b) -> value_sub c (eval c env a) (eval c env b)
  | Expr.Mul (a, b) -> value_mul c (eval c env a) (eval c env b)
  | Expr.Eq (a, b) ->
      c.arith <- c.arith + 1;
      if value_compare (eval c env a) (eval c env b) = 0 then VNum 1.0 else VNum 0.0
  | Expr.Let (v, bound, body) -> eval c (bind env v (eval c env bound)) body
  | Expr.Iter { times; var; init; body } ->
      let state = ref (eval c env init) in
      for _ = 1 to times do
        c.iterations <- c.iterations + 1;
        state := eval c (bind env var !state) body
      done;
      !state

let run ?(relations = []) (e : Expr.expr) : value * counters =
  let c = fresh_counters () in
  let v = eval c { vars = []; relations } e in
  (v, c)

(* Convert an in-memory relation to an IFAQ dictionary value: tuple-records
   mapped to multiplicity 1 (merged if duplicated). *)
let value_of_relation (rel : Relational.Relation.t) : value =
  let open Relational in
  let schema = Relation.schema rel in
  let names = Schema.names schema in
  let c = fresh_counters () in
  Relation.fold
    (fun acc t ->
      let key =
        VRec
          (List.sort compare
             (List.mapi (fun i n -> (n, VNum (Value.to_float t.(i)))) names))
      in
      value_add c acc (VDict [ (key, VNum 1.0) ]))
    (VDict []) rel

let rec pp_value ppf = function
  | VNum x -> Format.fprintf ppf "%g" x
  | VSym s -> Format.fprintf ppf "'%s" s
  | VRec fields ->
      Format.fprintf ppf "{%s}"
        (String.concat ", "
           (List.map
              (fun (n, v) -> Format.asprintf "%s=%a" n pp_value v)
              fields))
  | VDict entries ->
      Format.fprintf ppf "{%s}"
        (String.concat "; "
           (List.map
              (fun (k, v) -> Format.asprintf "%a -> %a" pp_value k pp_value v)
              entries))
