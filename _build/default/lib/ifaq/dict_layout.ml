(* Dictionary data layouts (Section 5.3, "Data layout": "IFAQ supports hash
   tables, balanced-trees, and sorted dictionaries. Each of them show
   advantages for different workloads").

   Three implementations of the dictionary interface the generated code
   consumes — build from a stream of (key, value) contributions (merging by
   addition), then point-probe and/or scan in key order. The benchmark
   harness compares them on view-building and probing workloads; the Figure
   11 pipeline's final stage is exactly such a consumer. *)

type layout = Hash | Tree | Sorted

let layout_name = function
  | Hash -> "hash table"
  | Tree -> "balanced tree"
  | Sorted -> "sorted array"

module type DICT = sig
  type t

  val layout : layout

  val build : (int * float) array -> t
  (** Accumulate contributions, summing values of equal keys. *)

  val find : t -> int -> float
  (** 0.0 for missing keys (sparse semantics). *)

  val fold_ascending : (int -> float -> 'a -> 'a) -> t -> 'a -> 'a
  (** In ascending key order (hash layouts must sort on demand). *)

  val size : t -> int
end

module Hash_dict : DICT = struct
  type t = (int, float) Hashtbl.t

  let layout = Hash

  let build entries =
    let h = Hashtbl.create (Stdlib.max 16 (Array.length entries)) in
    Array.iter
      (fun (k, v) ->
        Hashtbl.replace h k (v +. Option.value ~default:0.0 (Hashtbl.find_opt h k)))
      entries;
    h

  let find h k = Option.value ~default:0.0 (Hashtbl.find_opt h k)

  let fold_ascending f h init =
    let keys = Hashtbl.fold (fun k _ acc -> k :: acc) h [] in
    List.fold_left
      (fun acc k -> f k (Hashtbl.find h k) acc)
      init
      (List.sort compare keys)

  let size = Hashtbl.length
end

module Tree_dict : DICT = struct
  module M = Map.Make (Int)

  type t = float M.t

  let layout = Tree

  let build entries =
    Array.fold_left
      (fun m (k, v) ->
        M.update k (function None -> Some v | Some v0 -> Some (v0 +. v)) m)
      M.empty entries

  let find (m : t) k = Option.value ~default:0.0 (M.find_opt k m)
  let fold_ascending f m init = M.fold f m init
  let size = M.cardinal
end

module Sorted_dict : DICT = struct
  type t = { keys : int array; values : float array }

  let layout = Sorted

  let build entries =
    let entries = Array.copy entries in
    Array.sort (fun (k1, _) (k2, _) -> compare (k1 : int) k2) entries;
    let keys = ref [] and values = ref [] in
    Array.iter
      (fun (k, v) ->
        match !keys with
        | k0 :: _ when k0 = k -> (
            match !values with
            | v0 :: rest -> values := (v0 +. v) :: rest
            | [] -> assert false)
        | _ ->
            keys := k :: !keys;
            values := v :: !values)
      entries;
    {
      keys = Array.of_list (List.rev !keys);
      values = Array.of_list (List.rev !values);
    }

  let find t k =
    let lo = ref 0 and hi = ref (Array.length t.keys) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.keys.(mid) < k then lo := mid + 1 else hi := mid
    done;
    if !lo < Array.length t.keys && t.keys.(!lo) = k then t.values.(!lo) else 0.0

  let fold_ascending f t init =
    let acc = ref init in
    Array.iteri (fun i k -> acc := f k t.values.(i) !acc) t.keys;
    !acc

  let size t = Array.length t.keys
end

let all : (module DICT) list =
  [ (module Hash_dict); (module Tree_dict); (module Sorted_dict) ]

(* A view-building + probing workload, for cross-layout comparisons: build a
   dictionary from [n] contributions over [domain] keys, then sum [probes]
   random point lookups plus one ordered scan. Returns (checksum, seconds
   to build, seconds to probe) — checksums must agree across layouts. *)
let workload (module D : DICT) ~entries ~probes =
  let built, build_seconds = Util.Timing.time (fun () -> D.build entries) in
  let checksum = ref 0.0 in
  let probe_seconds =
    Util.Timing.time_only (fun () ->
        Array.iter (fun k -> checksum := !checksum +. D.find built k) probes;
        checksum := D.fold_ascending (fun _ v acc -> acc +. v) built !checksum)
  in
  (!checksum, build_seconds, probe_seconds)
