(* The IFAQ expression language (Section 5.3, Figure 11).

   A unified DSL for DB+ML workloads: dictionaries map keys (numbers,
   symbols, records) to values (numbers, records, or again dictionaries);
   Sigma-loops aggregate over a dictionary's support; Lambda-loops build
   dictionaries; [Iter] is the bounded convergence loop of gradient
   descent. Multiplicative equality guards express joins; singleton
   dictionaries under a Sigma build query results. *)

type expr =
  | Num of float
  | Sym of string (* symbolic constant, e.g. a feature name *)
  | Var of string
  | Rec of (string * expr) list (* record literal *)
  | Field of expr * string (* static field access *)
  | Set of string list (* static set of symbols: a dict sym -> 1 *)
  | Rel of string (* base relation: dict tuple-record -> multiplicity *)
  | Lookup of expr * expr (* dictionary access d(k); dynamic on records too *)
  | Lam of string * expr * expr (* lambda_{v in sup(e1)} e2 : dictionary *)
  | Sum of string * expr * expr (* sum_{v in sup(e1)} e2 *)
  | Sing of expr * expr (* singleton dictionary { e1 -> e2 } *)
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Eq of expr * expr (* equality guard: 1.0 / 0.0 *)
  | Let of string * expr * expr
  | Iter of { times : int; var : string; init : expr; body : expr }
      (* var <- init; repeat [times]: var <- body; result var *)

(* free variables *)
let rec free (e : expr) : string list =
  let ( ++ ) = List.rev_append in
  match e with
  | Num _ | Sym _ | Set _ | Rel _ -> []
  | Var v -> [ v ]
  | Rec fields -> List.concat_map (fun (_, e) -> free e) fields
  | Field (e, _) -> free e
  | Lookup (a, b) | Add (a, b) | Sub (a, b) | Mul (a, b) | Eq (a, b) ->
      free a ++ free b
  | Sing (a, b) -> free a ++ free b
  | Lam (v, src, body) | Sum (v, src, body) ->
      free src ++ List.filter (fun x -> x <> v) (free body)
  | Let (v, bound, body) ->
      free bound ++ List.filter (fun x -> x <> v) (free body)
  | Iter { var; init; body; _ } ->
      free init ++ List.filter (fun x -> x <> var) (free body)

let uses v e = List.mem v (free e)

(* capture-avoiding substitution of variable [v] by CLOSED expression [by]
   (all uses here substitute closed terms: symbols, fresh vars) *)
let rec subst v by (e : expr) : expr =
  let s = subst v by in
  match e with
  | Num _ | Sym _ | Set _ | Rel _ -> e
  | Var x -> if x = v then by else e
  | Rec fields -> Rec (List.map (fun (f, e) -> (f, s e)) fields)
  | Field (e, f) -> Field (s e, f)
  | Lookup (a, b) -> Lookup (s a, s b)
  | Add (a, b) -> Add (s a, s b)
  | Sub (a, b) -> Sub (s a, s b)
  | Mul (a, b) -> Mul (s a, s b)
  | Eq (a, b) -> Eq (s a, s b)
  | Sing (a, b) -> Sing (s a, s b)
  | Lam (x, src, body) ->
      if x = v then Lam (x, s src, body) else Lam (x, s src, s body)
  | Sum (x, src, body) ->
      if x = v then Sum (x, s src, body) else Sum (x, s src, s body)
  | Let (x, bound, body) ->
      if x = v then Let (x, s bound, body) else Let (x, s bound, s body)
  | Iter { times; var; init; body } ->
      if var = v then Iter { times; var; init = s init; body }
      else Iter { times; var; init = s init; body = s body }

(* structural size, for rewrite heuristics *)
let rec size = function
  | Num _ | Sym _ | Var _ | Set _ | Rel _ -> 1
  | Rec fields -> List.fold_left (fun acc (_, e) -> acc + size e) 1 fields
  | Field (e, _) -> 1 + size e
  | Lookup (a, b) | Add (a, b) | Sub (a, b) | Mul (a, b) | Eq (a, b) | Sing (a, b)
    ->
      1 + size a + size b
  | Lam (_, s, b) | Sum (_, s, b) | Let (_, s, b) -> 1 + size s + size b
  | Iter { init; body; _ } -> 1 + size init + size body

(* bottom-up transformation: apply [f] to every node, children first *)
let rec map_bottom_up f (e : expr) : expr =
  let go = map_bottom_up f in
  let e' =
    match e with
    | Num _ | Sym _ | Var _ | Set _ | Rel _ -> e
    | Rec fields -> Rec (List.map (fun (n, e) -> (n, go e)) fields)
    | Field (e, n) -> Field (go e, n)
    | Lookup (a, b) -> Lookup (go a, go b)
    | Add (a, b) -> Add (go a, go b)
    | Sub (a, b) -> Sub (go a, go b)
    | Mul (a, b) -> Mul (go a, go b)
    | Eq (a, b) -> Eq (go a, go b)
    | Sing (a, b) -> Sing (go a, go b)
    | Lam (v, s, b) -> Lam (v, go s, go b)
    | Sum (v, s, b) -> Sum (v, go s, go b)
    | Let (v, s, b) -> Let (v, go s, go b)
    | Iter { times; var; init; body } ->
        Iter { times; var; init = go init; body = go body }
  in
  f e'

(* fixpoint of a bottom-up rewrite (bounded, rewrites here terminate) *)
let rewrite_fix ?(max_rounds = 50) f e =
  let rec loop i e =
    if i = 0 then e
    else
      let e' = map_bottom_up f e in
      if e' = e then e else loop (i - 1) e'
  in
  loop max_rounds e

let rec pp ppf (e : expr) =
  let open Format in
  match e with
  | Num x -> fprintf ppf "%g" x
  | Sym s -> fprintf ppf "'%s" s
  | Var v -> fprintf ppf "%s" v
  | Rec fields ->
      fprintf ppf "{@[<hov>%a@]}"
        (pp_print_list
           ~pp_sep:(fun ppf () -> fprintf ppf ",@ ")
           (fun ppf (n, e) -> fprintf ppf "%s=%a" n pp e))
        fields
  | Field (e, f) -> fprintf ppf "%a.%s" pp e f
  | Set syms -> fprintf ppf "{%s}" (String.concat "," syms)
  | Rel r -> fprintf ppf "%s" r
  | Lookup (d, k) -> fprintf ppf "%a(%a)" pp d pp k
  | Lam (v, s, b) -> fprintf ppf "@[<hov 2>(\xce\xbb %s\xe2\x88\x88%a.@ %a)@]" v pp s pp b
  | Sum (v, s, b) -> fprintf ppf "@[<hov 2>(\xce\xa3 %s\xe2\x88\x88%a.@ %a)@]" v pp s pp b
  | Sing (k, v) -> fprintf ppf "{%a \xe2\x86\x92 %a}" pp k pp v
  | Add (a, b) -> fprintf ppf "(%a + %a)" pp a pp b
  | Sub (a, b) -> fprintf ppf "(%a - %a)" pp a pp b
  | Mul (a, b) -> fprintf ppf "(%a * %a)" pp a pp b
  | Eq (a, b) -> fprintf ppf "[%a = %a]" pp a pp b
  | Let (v, s, b) -> fprintf ppf "@[<v>let %s =@;<1 2>%a@ in@ %a@]" v pp s pp b
  | Iter { times; var; init; body } ->
      fprintf ppf "@[<v>iterate %d from %s :=@;<1 2>%a@ step@;<1 2>%a@]" times var
        pp init pp body

let to_string e = Format.asprintf "%a" pp e
