(** The IFAQ expression language (Section 5.3, Figure 11): a unified DSL for
    DB+ML workloads with dictionaries, Sigma/Lambda loops over dictionary
    supports, records, multiplicative equality guards, singleton
    dictionaries, and a bounded convergence loop. *)

type expr =
  | Num of float
  | Sym of string  (** symbolic constant, e.g. a feature name *)
  | Var of string
  | Rec of (string * expr) list
  | Field of expr * string  (** static field access *)
  | Set of string list  (** static symbol set: the dict sym -> 1 *)
  | Rel of string  (** base relation: dict tuple-record -> multiplicity *)
  | Lookup of expr * expr  (** d(k); dynamic on records too *)
  | Lam of string * expr * expr  (** lambda_(v in sup e1). e2 : a dictionary *)
  | Sum of string * expr * expr  (** Sigma_(v in sup e1). e2 *)
  | Sing of expr * expr  (** the singleton dictionary [{e1 -> e2}] *)
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Eq of expr * expr  (** equality guard: 1.0 / 0.0 *)
  | Let of string * expr * expr
  | Iter of { times : int; var : string; init : expr; body : expr }
      (** var <- init; repeat [times]: var <- body; result var *)

val free : expr -> string list
(** Free variables (with repetitions). *)

val uses : string -> expr -> bool

val subst : string -> expr -> expr -> expr
(** [subst v by e] substitutes the CLOSED expression [by] for [v]. *)

val size : expr -> int
(** AST node count, for rewrite heuristics. *)

val map_bottom_up : (expr -> expr) -> expr -> expr
(** Apply a transformation to every node, children first. *)

val rewrite_fix : ?max_rounds:int -> (expr -> expr) -> expr -> expr
(** Bottom-up rewriting to a fixpoint (bounded). *)

val pp : Format.formatter -> expr -> unit
val to_string : expr -> string
