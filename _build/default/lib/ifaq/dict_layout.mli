(** Dictionary data layouts (Section 5.3, "Data layout"): hash table,
    balanced tree and sorted array implementations of the dictionary
    interface IFAQ's generated code consumes, with a comparison workload. *)

type layout = Hash | Tree | Sorted

val layout_name : layout -> string

module type DICT = sig
  type t

  val layout : layout

  val build : (int * float) array -> t
  (** Accumulate contributions, summing values of equal keys. *)

  val find : t -> int -> float
  (** 0.0 for missing keys. *)

  val fold_ascending : (int -> float -> 'a -> 'a) -> t -> 'a -> 'a
  val size : t -> int
end

module Hash_dict : DICT
module Tree_dict : DICT
module Sorted_dict : DICT

val all : (module DICT) list

val workload :
  (module DICT) -> entries:(int * float) array -> probes:int array -> float * float * float
(** Build-then-probe comparison: (checksum, build seconds, probe seconds);
    checksums agree across layouts. *)
