(** Interpreter for IFAQ expressions with operation counters — the cost
    model behind the Figure 11 ablation: transformations must preserve the
    result while driving the counters down. Dictionaries are sparse
    (zero-valued entries are dropped on merge). *)

type value =
  | VNum of float
  | VSym of string
  | VRec of (string * value) list  (** fields sorted by name *)
  | VDict of (value * value) list  (** sorted assoc, distinct keys *)

type counters = {
  mutable arith : int;  (** + - * and guard comparisons *)
  mutable dict_ops : int;  (** lookups and singleton merges *)
  mutable iterations : int;  (** loop-body executions *)
}

val fresh_counters : unit -> counters
val total : counters -> int

exception Type_error of string

val value_compare : value -> value -> int
val is_zero : value -> bool
val value_add : counters -> value -> value -> value
(** Pointwise: numbers, records fieldwise, dictionaries keywise (sparse). *)

val value_mul : counters -> value -> value -> value
(** Numbers, or a number scaling a record/dictionary. *)

type env = {
  vars : (string * value) list;
  relations : (string * value) list;  (** name -> VDict *)
}

val eval : counters -> env -> Expr.expr -> value
(** @raise Type_error on ill-typed programs. *)

val run : ?relations:(string * value) list -> Expr.expr -> value * counters
(** Evaluate a closed program with fresh counters. *)

val value_of_relation : Relational.Relation.t -> value
(** A relation as an IFAQ dictionary: numeric tuple-records -> multiplicity. *)

val pp_value : Format.formatter -> value -> unit
