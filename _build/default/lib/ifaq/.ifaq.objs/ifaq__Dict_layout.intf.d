lib/ifaq/dict_layout.mli:
