lib/ifaq/gd_example.ml: Expr Fun Interp List Rewrite Util
