lib/ifaq/gd_example.mli: Expr Interp
