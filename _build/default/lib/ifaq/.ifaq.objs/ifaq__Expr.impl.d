lib/ifaq/expr.ml: Format List String
