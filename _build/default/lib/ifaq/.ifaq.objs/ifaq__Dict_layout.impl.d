lib/ifaq/dict_layout.ml: Array Hashtbl Int List Map Option Stdlib Util
