lib/ifaq/interp.mli: Expr Format Relational
