lib/ifaq/rewrite.mli: Expr
