lib/ifaq/interp.ml: Array Expr Format List Printf Relation Relational Schema String Value
