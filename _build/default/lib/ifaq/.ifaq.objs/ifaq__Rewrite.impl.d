lib/ifaq/rewrite.ml: Expr List Printf
