lib/ifaq/expr.mli: Format
