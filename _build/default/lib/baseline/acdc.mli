(** The Figure 6 code-optimisation ladder on the covariance-matrix task:
    four implementations of the same computation (the (n+1)^2 covariance
    batch over the never-materialised join), from AC/DC-style interpreted
    and unshared to specialised, ring-shared, and parallel. All stages
    return the same triple (asserted by tests). *)

open Relational
module Cov = Rings.Covariance

val scalar_pass : Database.t -> (string -> Schema.t -> Tuple.t -> float) -> float
(** One bottom-up pass over the join tree summing per-tuple factor products;
    [factor] must attribute each aggregate factor to exactly one relation. *)

val stage0_interpreted : Database.t -> features:string list -> Cov.t
(** One pass PER aggregate, factors evaluated by a boxed expression
    interpreter with per-tuple name resolution. *)

val stage1_specialised : Database.t -> features:string list -> Cov.t
(** One pass per aggregate, positions resolved once, tight float loops. *)

val stage2_shared : Database.t -> features:string list -> Cov.t
(** ONE pass for the whole batch via the covariance ring. *)

val stage3_parallel : Database.t -> features:string list -> Cov.t
(** Stage 2 with scans chunked across domains. *)

val stages : (string * (Database.t -> features:string list -> Cov.t)) list
(** The ladder, in order, with display names. *)
