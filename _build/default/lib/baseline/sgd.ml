(* Mini-batch stochastic gradient descent over the one-hot data matrix: the
   TensorFlow stand-in of Figure 3 (one epoch, 100K-tuple batches in the
   paper; batch size configurable here). Works row-at-a-time over the
   materialised matrix — the cost profile the structure-aware approach
   avoids. *)

type params = {
  epochs : int;
  batch_size : int;
  learning_rate : float;
  l2 : float; (* ridge penalty *)
}

let default_params =
  { epochs = 1; batch_size = 1024; learning_rate = 1e-2; l2 = 1e-3 }

(* Feature-wise standardisation helps SGD converge; fit on train data. *)
type scaler = { mean : float array; std : float array }

let fit_scaler (m : One_hot.matrix) =
  let w = One_hot.cols m and n = One_hot.rows m in
  let mean = Array.make w 0.0 and std = Array.make w 0.0 in
  Array.iter (fun row -> Array.iteri (fun j v -> mean.(j) <- mean.(j) +. v) row) m.x;
  Array.iteri (fun j s -> mean.(j) <- s /. float_of_int (Stdlib.max 1 n)) mean;
  Array.iter
    (fun row ->
      Array.iteri
        (fun j v -> std.(j) <- std.(j) +. ((v -. mean.(j)) ** 2.0))
        row)
    m.x;
  Array.iteri
    (fun j s ->
      let v = sqrt (s /. float_of_int (Stdlib.max 1 n)) in
      std.(j) <- (if v < 1e-9 then 1.0 else v))
    std;
  (* never scale the intercept *)
  mean.(0) <- 0.0;
  std.(0) <- 1.0;
  { mean; std }

let scale_row scaler row =
  Array.mapi (fun j v -> (v -. scaler.mean.(j)) /. scaler.std.(j)) row

(* One SGD run; returns weights in the SCALED feature space together with
   the scaler (predictions must apply it). *)
let train ?(params = default_params) (m : One_hot.matrix) =
  let n = One_hot.rows m and w = One_hot.cols m in
  let scaler = fit_scaler m in
  let weights = Array.make w 0.0 in
  let grad = Array.make w 0.0 in
  for _ = 1 to params.epochs do
    let batch_start = ref 0 in
    while !batch_start < n do
      let batch_end = Stdlib.min n (!batch_start + params.batch_size) in
      Array.fill grad 0 w 0.0;
      for i = !batch_start to batch_end - 1 do
        let row = scale_row scaler m.x.(i) in
        let pred = ref 0.0 in
        for j = 0 to w - 1 do
          pred := !pred +. (weights.(j) *. row.(j))
        done;
        let err = !pred -. m.y.(i) in
        for j = 0 to w - 1 do
          grad.(j) <- grad.(j) +. (err *. row.(j))
        done
      done;
      let bsz = float_of_int (batch_end - !batch_start) in
      for j = 0 to w - 1 do
        weights.(j) <-
          weights.(j)
          -. (params.learning_rate *. ((grad.(j) /. bsz) +. (params.l2 *. weights.(j))))
      done;
      batch_start := batch_end
    done
  done;
  (weights, scaler)

let predict (weights, scaler) row =
  let srow = scale_row scaler row in
  let acc = ref 0.0 in
  Array.iteri (fun j v -> acc := !acc +. (weights.(j) *. v)) srow;
  !acc

let rmse model (m : One_hot.matrix) =
  let n = One_hot.rows m in
  if n = 0 then 0.0
  else begin
    let se = ref 0.0 in
    Array.iteri
      (fun i row ->
        let err = predict model row -. m.y.(i) in
        se := !se +. (err *. err))
      m.x;
    sqrt (!se /. float_of_int n)
  end
