lib/baseline/one_hot.mli: Aggregates Relation Relational
