lib/baseline/agnostic.mli: Aggregates Database Relational Sgd
