lib/baseline/acdc.mli: Database Relational Rings Schema Tuple
