lib/baseline/sgd.ml: Array One_hot Stdlib
