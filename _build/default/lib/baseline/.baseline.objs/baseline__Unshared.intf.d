lib/baseline/unshared.mli: Aggregates Database Relation Relational
