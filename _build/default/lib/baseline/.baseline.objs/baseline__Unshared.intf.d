lib/baseline/unshared.mli: Aggregates Relation Relational
