lib/baseline/one_hot.ml: Aggregates Array Hashtbl List Printf Relation Relational Schema Util Value
