lib/baseline/sgd.mli: One_hot
