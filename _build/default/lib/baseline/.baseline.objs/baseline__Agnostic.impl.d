lib/baseline/agnostic.ml: Aggregates Database Filename Obs One_hot Relation Relational Sgd Sys Unshared Util
