lib/baseline/agnostic.ml: Aggregates Database Filename One_hot Relation Relational Sgd Sys Util
