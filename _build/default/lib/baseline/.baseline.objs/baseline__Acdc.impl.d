lib/baseline/acdc.ml: Array Database Fivm Hashtbl Join_tree Keypack List Option Relation Relational Rings Schema Tuple Util Value
