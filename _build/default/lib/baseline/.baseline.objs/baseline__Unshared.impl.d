lib/baseline/unshared.ml: Aggregates Array Database Hashtbl List Obs Predicate Relation Relational Schema Tuple Value
