lib/baseline/unshared.ml: Aggregates Array Hashtbl List Predicate Relation Relational Schema Tuple Value
