lib/baseline/unshared.ml: Aggregates Array Column Database Hashtbl List Obs Predicate Relation Relational Schema Tuple Value
