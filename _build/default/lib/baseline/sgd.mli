(** Mini-batch stochastic gradient descent over the one-hot data matrix —
    the TensorFlow stand-in of Figure 3 (one epoch, large batches), working
    row-at-a-time over the materialised matrix. *)

type params = {
  epochs : int;
  batch_size : int;
  learning_rate : float;
  l2 : float;
}

val default_params : params
(** One epoch, batch 1024, lr 1e-2, l2 1e-3. *)

type scaler = { mean : float array; std : float array }

val fit_scaler : One_hot.matrix -> scaler
(** Feature-wise standardisation fitted on the data (intercept untouched). *)

val scale_row : scaler -> float array -> float array

val train : ?params:params -> One_hot.matrix -> float array * scaler
(** Weights are in the scaled space; prediction applies the scaler. *)

val predict : float array * scaler -> float array -> float
val rmse : float array * scaler -> One_hot.matrix -> float
