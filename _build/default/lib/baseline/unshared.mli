(** Per-aggregate batch evaluation over the materialised join — the
    DBX/MonetDB stand-ins of Figure 4 (left). Both answer every aggregate
    independently (no sharing across the batch). *)

open Relational
module Spec = Aggregates.Spec
module Batch = Aggregates.Batch

val dbx : Relation.t -> Batch.t -> (string * Spec.result) list
(** Tuple-at-a-time: one full interpreted scan per aggregate. *)

type columns
(** Decoded columnar layout (typed arrays per attribute — MonetDB's BATs). *)

val decode : Relation.t -> columns

val eval_columnar : columns -> Spec.t -> Spec.result
(** One aggregate, column-at-a-time with a selection vector.
    Raises on filters outside the columnar shapes (Or/Not/inequalities). *)

val monet : Relation.t -> Batch.t -> (string * Spec.result) list
(** Column-at-a-time: decode once, then one pass per aggregate. *)

(** {1 Engine interfaces}

    Both baselines packaged as {!Aggregates.Engine_intf.S} engines; each
    materialises the join itself so its answer time covers the whole
    pipeline. Every per-aggregate pass bumps the [unshared.scans] counter. *)

module Dbx : sig
  val name : string
  val description : string

  type options = unit

  val default_options : options

  val eval_batch :
    ?options:options -> Database.t -> Batch.t -> (string * Spec.result) list
end

module Monet : sig
  val name : string
  val description : string

  type options = unit

  val default_options : options

  val eval_batch :
    ?options:options -> Database.t -> Batch.t -> (string * Spec.result) list
end
