(* The structure-agnostic pipeline of Figure 2 (top flow) / Figure 3 (right
   table): materialise the feature-extraction join in the "database system",
   export it to CSV, import it into the "learning system", one-hot encode and
   shuffle, then run one epoch of mini-batch SGD. Each stage is timed
   separately so the benchmark can print the paper's per-stage rows. *)

open Relational

(* Observability ([agnostic.*]): the materialised-join size that dominates
   the pipeline, tracked alongside one span per stage. *)
let c_join_rows = Obs.counter "agnostic.join_rows"

type report = {
  join_seconds : float;
  export_seconds : float; (* CSV write + read back (the data move) *)
  shuffle_seconds : float; (* one-hot encode + shuffle *)
  learn_seconds : float;
  join_cardinality : int;
  join_csv_bytes : int;
  matrix_bytes : int;
  rmse : float;
  weights : float array;
}

let run ?(sgd_params = Sgd.default_params) ?(test_fraction = 0.02)
    ?(tmp_dir = Filename.get_temp_dir_name ()) (db : Database.t)
    (features : Aggregates.Feature.t) : report =
  (* 1. materialise the join (the "PostgreSQL" step) *)
  let join, join_seconds =
    Obs.with_span "agnostic.join" @@ fun () ->
    Util.Timing.time (fun () -> Database.materialise_join db)
  in
  Obs.add c_join_rows (Relation.cardinality join);
  let join_csv_bytes = Relation.csv_size join in
  (* 2. export to CSV and re-import (the data move between the systems) *)
  let path = Filename.temp_file ~temp_dir:tmp_dir "borg_export" ".csv" in
  let reimported, export_seconds =
    Obs.with_span "agnostic.export" @@ fun () ->
    Util.Timing.time (fun () ->
        Util.Csvio.write_file path (Relation.csv_rows join);
        let rows = Util.Csvio.read_file path in
        Relation.of_csv_rows (Relation.name join) (Relation.schema join) rows)
  in
  Sys.remove path;
  (* 3. one-hot encode and shuffle (learner-side preprocessing) *)
  let (train, test, matrix_bytes), shuffle_seconds =
    Obs.with_span "agnostic.shuffle" @@ fun () ->
    Util.Timing.time (fun () ->
        let m = One_hot.encode reimported features in
        let m = One_hot.shuffle m in
        let train, test = One_hot.split m ~test_fraction in
        (train, test, One_hot.byte_size m))
  in
  (* 4. one epoch of SGD (the "TensorFlow" step) *)
  let model, learn_seconds =
    Obs.with_span "agnostic.learn" @@ fun () ->
    Util.Timing.time (fun () -> Sgd.train ~params:sgd_params train)
  in
  let rmse = Sgd.rmse model (if One_hot.rows test > 0 then test else train) in
  {
    join_seconds;
    export_seconds;
    shuffle_seconds;
    learn_seconds;
    join_cardinality = Relation.cardinality join;
    join_csv_bytes;
    matrix_bytes;
    rmse;
    weights = fst model;
  }

let total_seconds r =
  r.join_seconds +. r.export_seconds +. r.shuffle_seconds +. r.learn_seconds

(* Engine_intf implementation: the structure-agnostic way to answer an
   aggregate batch — materialise the join, then evaluate every aggregate
   independently over it (tuple-at-a-time, as a database client would). *)
let name = "agnostic"

let description =
  "materialise the join, then evaluate each aggregate over it independently"

type options = unit

let default_options = ()

let eval_batch ?options:_ (db : Database.t) (batch : Aggregates.Batch.t) :
    (string * Aggregates.Spec.result) list =
  Obs.with_span "agnostic.eval" @@ fun () ->
  let join =
    Obs.with_span "agnostic.join" @@ fun () -> Database.materialise_join db
  in
  Obs.add c_join_rows (Relation.cardinality join);
  Unshared.dbx join batch
