(* Per-aggregate batch evaluation over the materialised join — the stand-ins
   for the commercial DBX and MonetDB baselines of Figure 4 (left). Both
   answer each aggregate of the batch INDEPENDENTLY (no sharing across the
   batch, which the paper identifies as the reason those systems fall behind
   LMFAO by a factor tracking the batch size):

   - [dbx]: classical tuple-at-a-time evaluation; one full interpreted scan
     of the join per aggregate.
   - [monet]: column-at-a-time evaluation; attribute columns are decoded
     once into typed arrays (MonetDB's BAT layout), then each aggregate
     scans just its columns with tight loops — faster constants, still one
     pass per aggregate. *)

open Relational
module Spec = Aggregates.Spec
module Batch = Aggregates.Batch

(* Observability ([unshared.*]): one scan per aggregate is exactly what the
   unshared baselines pay; the counter makes the batch-size factor visible. *)
let c_scans = Obs.counter "unshared.scans"

let dbx (join : Relation.t) (batch : Batch.t) : (string * Spec.result) list =
  Obs.with_span "unshared.dbx" @@ fun () ->
  List.map
    (fun spec ->
      Obs.incr c_scans;
      (spec.Spec.id, Spec.eval_flat join spec))
    batch.Batch.aggregates

(* Columnar decode: every attribute becomes either a float column or a raw
   value column (for group-bys). *)
type columns = {
  n : int;
  floats : (string, float array) Hashtbl.t;
  values : (string, Value.t array) Hashtbl.t;
}

let decode (join : Relation.t) : columns =
  let schema = Relation.schema join in
  let n = Relation.cardinality join in
  let floats = Hashtbl.create 16 and values = Hashtbl.create 16 in
  List.iter
    (fun (a : Schema.attr) ->
      let pos = Schema.position schema a.name in
      let src = Relation.column join pos in
      (match a.ty with
      | Value.TFloat | Value.TInt ->
          let col = Array.make n 0.0 in
          for i = 0 to n - 1 do
            col.(i) <- Column.float_at src i
          done;
          Hashtbl.replace floats a.name col
      | Value.TStr -> ());
      let col = Array.make n Value.Null in
      for i = 0 to n - 1 do
        col.(i) <- Column.get src i
      done;
      Hashtbl.replace values a.name col)
    (Schema.attrs schema);
  { n; floats; values }

(* Evaluate one aggregate column-at-a-time. *)
let eval_columnar (c : columns) (spec : Spec.t) : Spec.result =
  (* selection vector from the filter *)
  let keep = Array.make c.n true in
  let rec apply_filter (p : Predicate.t) =
    match p with
    | Predicate.True -> ()
    | Predicate.And (a, b) ->
        apply_filter a;
        apply_filter b
    | Predicate.Ge (a, v) ->
        let col = Hashtbl.find c.values a in
        for i = 0 to c.n - 1 do
          if Value.compare col.(i) v < 0 then keep.(i) <- false
        done
    | Predicate.Lt (a, v) ->
        let col = Hashtbl.find c.values a in
        for i = 0 to c.n - 1 do
          if Value.compare col.(i) v >= 0 then keep.(i) <- false
        done
    | Predicate.Eq (a, v) ->
        let col = Hashtbl.find c.values a in
        for i = 0 to c.n - 1 do
          if not (Value.equal col.(i) v) then keep.(i) <- false
        done
    | Predicate.In (a, vs) ->
        let col = Hashtbl.find c.values a in
        for i = 0 to c.n - 1 do
          if not (List.exists (Value.equal col.(i)) vs) then keep.(i) <- false
        done
    | Predicate.Not _ | Predicate.Or _ | Predicate.Additive_ineq _ ->
        (* general predicates: fall back to row-at-a-time semantics *)
        invalid_arg "Unshared.eval_columnar: unsupported filter shape"
  in
  apply_filter spec.Spec.filter;
  (* value vector: product of term columns *)
  let v = Array.make c.n 1.0 in
  List.iter
    (fun (a, p) ->
      let col = Hashtbl.find c.floats a in
      for i = 0 to c.n - 1 do
        for _ = 1 to p do
          v.(i) <- v.(i) *. col.(i)
        done
      done)
    spec.Spec.terms;
  match spec.Spec.group_by with
  | [] ->
      let acc = ref 0.0 in
      for i = 0 to c.n - 1 do
        if keep.(i) then acc := !acc +. v.(i)
      done;
      [ ([], !acc) ]
  | groups ->
      let cols = List.map (fun g -> (g, Hashtbl.find c.values g)) groups in
      let table : float ref Tuple.Tbl.t = Tuple.Tbl.create 64 in
      for i = 0 to c.n - 1 do
        if keep.(i) then begin
          let key = Array.of_list (List.map (fun (_, col) -> col.(i)) cols) in
          match Tuple.Tbl.find_opt table key with
          | Some r -> r := !r +. v.(i)
          | None -> Tuple.Tbl.add table key (ref v.(i))
        end
      done;
      Tuple.Tbl.fold
        (fun key r acc ->
          let assignment =
            List.sort compare
              (List.map2 (fun (g, _) x -> (g, x)) cols (Array.to_list key))
          in
          (assignment, !r) :: acc)
        table []

let monet (join : Relation.t) (batch : Batch.t) : (string * Spec.result) list =
  Obs.with_span "unshared.monet" @@ fun () ->
  let c = decode join in
  List.map
    (fun spec ->
      Obs.incr c_scans;
      (spec.Spec.id, eval_columnar c spec))
    batch.Batch.aggregates

(* Engine_intf implementations: both materialise the join themselves so
   their answer time covers the whole pipeline, like the paper's baselines. *)
module Dbx = struct
  let name = "dbx"
  let description = "tuple-at-a-time over the materialised join, one scan per aggregate"

  type options = unit

  let default_options = ()

  let eval_batch ?options:_ db batch =
    Obs.with_span "unshared.dbx_engine" @@ fun () ->
    dbx (Database.materialise_join db) batch
end

module Monet = struct
  let name = "monet"
  let description = "column-at-a-time over the materialised join, one pass per aggregate"

  type options = unit

  let default_options = ()

  let eval_batch ?options:_ db batch =
    Obs.with_span "unshared.monet_engine" @@ fun () ->
    monet (Database.materialise_join db) batch
end
