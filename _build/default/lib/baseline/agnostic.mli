(** The structure-agnostic pipeline of Figure 2 (top) / Figure 3: materialise
    the join, export/import it as CSV (the data move between systems),
    one-hot encode and shuffle, then one epoch of mini-batch SGD — each
    stage timed separately for the paper's per-stage rows. *)

open Relational

type report = {
  join_seconds : float;
  export_seconds : float;  (** CSV write + read back *)
  shuffle_seconds : float;  (** one-hot encode + shuffle + split *)
  learn_seconds : float;
  join_cardinality : int;
  join_csv_bytes : int;
  matrix_bytes : int;
  rmse : float;  (** on the held-out fraction (train set when empty) *)
  weights : float array;
}

val run :
  ?sgd_params:Sgd.params ->
  ?test_fraction:float ->
  ?tmp_dir:string ->
  Database.t ->
  Aggregates.Feature.t ->
  report

val total_seconds : report -> float
