(* One-hot encoding of the materialised data matrix (shortcoming (3) of
   Section 1.2): categorical features are expanded into indicator columns,
   turning the tall-and-thin matrix chubby. This is what the mainstream
   learner receives; the structure-aware path never builds it. *)

open Relational

type matrix = {
  columns : string array; (* encoded column names *)
  x : float array array; (* row-major; includes intercept column 0 *)
  y : float array;
}

let rows m = Array.length m.x
let cols m = Array.length m.columns

(* Build the encoded matrix from a materialised join. Categorical domains
   are discovered from the data (one indicator column per observed value). *)
let encode (rel : Relation.t) (f : Aggregates.Feature.t) : matrix =
  let schema = Relation.schema rel in
  let response =
    match f.response with
    | Some r -> Schema.position schema r
    | None -> invalid_arg "One_hot.encode: needs a response"
  in
  let continuous =
    List.map (fun a -> (a, Schema.position schema a)) f.continuous
  in
  let categorical =
    List.map (fun a -> (a, Schema.position schema a)) f.categorical
  in
  (* discover categorical domains *)
  let domains =
    List.map
      (fun (a, pos) ->
        let seen = Hashtbl.create 16 in
        let order = ref [] in
        Relation.iter
          (fun t ->
            let v = t.(pos) in
            if not (Hashtbl.mem seen v) then begin
              Hashtbl.add seen v (Hashtbl.length seen);
              order := v :: !order
            end)
          rel;
        (a, pos, seen, List.rev !order))
      categorical
  in
  let columns =
    Array.of_list
      ("intercept"
      :: List.map fst continuous
      @ List.concat_map
          (fun (a, _, _, order) ->
            List.map (fun v -> Printf.sprintf "%s=%s" a (Value.to_string v)) order)
          domains)
  in
  let n = Relation.cardinality rel in
  let width = Array.length columns in
  let x = Array.init n (fun _ -> Array.make width 0.0) in
  let y = Array.make n 0.0 in
  let n_cont = List.length continuous in
  Relation.iteri
    (fun i t ->
      let row = x.(i) in
      row.(0) <- 1.0;
      List.iteri (fun j (_, pos) -> row.(j + 1) <- Value.to_float t.(pos)) continuous;
      let base = ref (1 + n_cont) in
      List.iter
        (fun (_, pos, seen, order) ->
          let slot = Hashtbl.find seen t.(pos) in
          row.(!base + slot) <- 1.0;
          base := !base + List.length order)
        domains;
      y.(i) <- Value.to_float t.(response))
    rel;
  { columns; x; y }

let shuffle ?(seed = 42) m =
  let rng = Util.Prng.create seed in
  let order = Array.init (rows m) (fun i -> i) in
  Util.Prng.shuffle_in_place rng order;
  {
    m with
    x = Array.map (fun i -> m.x.(i)) order;
    y = Array.map (fun i -> m.y.(i)) order;
  }

(* Train/test split by row prefix (call after [shuffle]). *)
let split m ~test_fraction =
  let n = rows m in
  let n_test = int_of_float (float_of_int n *. test_fraction) in
  let n_train = n - n_test in
  ( { m with x = Array.sub m.x 0 n_train; y = Array.sub m.y 0 n_train },
    { m with x = Array.sub m.x n_train n_test; y = Array.sub m.y n_train n_test } )

(* Approximate in-memory size in bytes (floats only). *)
let byte_size m = rows m * cols m * 8
