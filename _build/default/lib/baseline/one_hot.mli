(** One-hot encoding of the materialised data matrix (shortcoming (3) of
    Section 1.2): categorical features expand into indicator columns,
    turning the tall-and-thin matrix chubby. The structure-aware path never
    builds this. *)

open Relational

type matrix = {
  columns : string array;  (** encoded names; column 0 is the intercept *)
  x : float array array;
  y : float array;
}

val rows : matrix -> int
val cols : matrix -> int

val encode : Relation.t -> Aggregates.Feature.t -> matrix
(** Categorical domains are discovered from the data (one indicator per
    observed value). Requires a response in the feature map. *)

val shuffle : ?seed:int -> matrix -> matrix
val split : matrix -> test_fraction:float -> matrix * matrix
(** Row-prefix split; call after {!shuffle}. *)

val byte_size : matrix -> int
(** Approximate in-memory footprint (floats only). *)
