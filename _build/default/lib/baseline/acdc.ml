(* The code-optimisation ladder of Figure 6, on the covariance-matrix task.

   AC/DC, LMFAO's precursor, computes the aggregate batch over the join tree
   with none of LMFAO's code optimisations; the figure then adds them one at
   a time. We reproduce the ladder with four implementations of the same
   computation (the full (n+1)^2 covariance batch over the join, without
   materialising it):

     stage 0  baseline      one pass PER AGGREGATE, interpreted attribute
                            access (name lookups and boxing per tuple)
     stage 1  +specialise   one pass per aggregate, positions resolved once
                            per node and tight float inner loops
     stage 2  +sharing      ONE pass for the whole batch using the
                            covariance ring (compound payloads)
     stage 3  +parallel     stage 2 with the scans chunked across domains

   All four return the same covariance triple (asserted by tests). *)

open Relational
module Cov = Rings.Covariance
module Cov_task = Fivm.Cov_task
module P = Fivm.Payload.Cov_dyn

(* ---- generic bottom-up pass over the join tree with scalar payloads ---- *)

(* One pass computing SUM over the join of [factor rel tuple] products.
   [factor] must attribute each aggregate factor to exactly one relation. *)
let scalar_pass (db : Database.t) (factor : string -> Schema.t -> Tuple.t -> float) =
  let jt = Database.join_tree db in
  let rec view (node : Join_tree.node) : float ref Keypack.Hybrid.t =
    let child_views = List.map (fun c -> (c, view c)) node.children in
    let schema = Relation.schema node.rel in
    let name = Relation.name node.rel in
    let key_positions = Array.of_list (List.map (Schema.position schema) node.key) in
    let own_key = Relation.extractor node.rel key_positions in
    let child_keys =
      List.map
        (fun ((c : Join_tree.node), v) ->
          ( Relation.extractor node.rel
              (Array.of_list (List.map (Schema.position schema) c.key)),
            v ))
        child_views
    in
    let out = Keypack.Hybrid.create 64 in
    Relation.iteri
      (fun i tuple ->
        let rec probe = function
          | [] -> Some 1.0
          | (key_of, v) :: rest -> (
              match Keypack.Hybrid.find_opt v (key_of i) with
              | Some partial -> (
                  match probe rest with
                  | Some acc -> Some (acc *. !partial)
                  | None -> None)
              | None -> None)
        in
        match probe child_keys with
        | None -> ()
        | Some children_product ->
            let contrib = factor name schema tuple *. children_product in
            let key = own_key i in
            (match Keypack.Hybrid.find_opt out key with
            | Some r -> r := !r +. contrib
            | None -> Keypack.Hybrid.add out key (ref contrib)))
      node.rel;
    out
  in
  let root_view = view (Join_tree.tree jt) in
  match Keypack.Hybrid.find_opt root_view (Keypack.P 0) with
  | Some r -> !r
  | None -> 0.0

(* ---- stage 0: interpreted, unshared ---- *)

(* A tiny expression interpreter: what an unspecialised engine executes per
   tuple — recursive dispatch, attribute resolution by name, boxed values. *)
type iexpr = Iconst of float | Iattr of string | Imul of iexpr * iexpr

let rec ieval (schema : Schema.t) (tuple : Tuple.t) = function
  | Iconst x -> Value.Float x
  | Iattr a -> (
      match Schema.position_opt schema a with
      | Some pos -> tuple.(pos)
      | None -> Value.Float 1.0)
  | Imul (e1, e2) ->
      Value.Float
        (Value.to_float (ieval schema tuple e1)
        *. Value.to_float (ieval schema tuple e2))

let stage0_interpreted (db : Database.t) ~features : Cov.t =
  let task = Cov_task.make db ~features in
  let features_arr = Array.of_list features in
  let pairs = Cov_task.aggregate_pairs task in
  (* owner relation per feature, for single-counting of join attributes *)
  let owner = Hashtbl.create 16 in
  List.iter
    (fun rel ->
      List.iter
        (fun (i, _) -> Hashtbl.replace owner features_arr.(i) (Relation.name rel))
        (Cov_task.owned_features task (Relation.name rel)))
    (Database.relations db);
  let totals =
    Array.map
      (fun (i, j) ->
        (* per-relation interpreted expression for this aggregate's factor *)
        let expr_for rel =
          let term idx =
            if idx = 0 then Iconst 1.0
            else
              let attr = features_arr.(idx - 1) in
              if Hashtbl.find owner attr = rel then Iattr attr else Iconst 1.0
          in
          Imul (term i, term j)
        in
        let factor rel schema tuple =
          Value.to_float (ieval schema tuple (expr_for rel))
        in
        ((i, j), scalar_pass db factor))
      pairs
  in
  Cov_task.assemble task (Array.to_list totals)

(* ---- stage 1: + specialisation ---- *)

let stage1_specialised (db : Database.t) ~features : Cov.t =
  let task = Cov_task.make db ~features in
  let pairs = Cov_task.aggregate_pairs task in
  let totals =
    Array.map
      (fun (i, j) ->
        (* resolve the two factor positions per relation ONCE *)
        let positions = Hashtbl.create 8 in
        List.iter
          (fun rel ->
            let name = Relation.name rel in
            let find idx =
              if idx = 0 then None
              else
                List.find_map
                  (fun (f, pos) -> if f = idx - 1 then Some pos else None)
                  (Cov_task.owned_features task name)
            in
            Hashtbl.replace positions name (find i, find j))
          (Database.relations db);
        let factor rel _schema (tuple : Tuple.t) =
          match Hashtbl.find positions rel with
          | None, None -> 1.0
          | Some p, None | None, Some p -> Value.to_float tuple.(p)
          | Some p, Some q -> Value.to_float tuple.(p) *. Value.to_float tuple.(q)
        in
        ((i, j), scalar_pass db factor))
      pairs
  in
  Cov_task.assemble task (Array.to_list totals)

(* ---- stages 2 and 3: + sharing (covariance ring), + parallelism ---- *)

let ring_pass ?(parallel = false) (db : Database.t) (task : Cov_task.t) : Cov.t =
  let jt = Database.join_tree db in
  let rec view (node : Join_tree.node) : P.t ref Keypack.Hybrid.t =
    let child_views = List.map (fun c -> (c, view c)) node.children in
    let schema = Relation.schema node.rel in
    let name = Relation.name node.rel in
    let key_positions = Array.of_list (List.map (Schema.position schema) node.key) in
    let own_key = Relation.extractor node.rel key_positions in
    let child_keys =
      List.map
        (fun ((c : Join_tree.node), v) ->
          ( Relation.extractor node.rel
              (Array.of_list (List.map (Schema.position schema) c.key)),
            v ))
        child_views
    in
    let lift = Cov_task.lift_cov task name in
    let n = Relation.cardinality node.rel in
    let scan lo len =
      let out = Keypack.Hybrid.create 64 in
      for idx = lo to lo + len - 1 do
        let tuple = Relation.get node.rel idx in
        let rec probe acc = function
          | [] -> Some acc
          | (key_of, v) :: rest -> (
              match Keypack.Hybrid.find_opt v (key_of idx) with
              | Some partial -> probe (P.mul acc !partial) rest
              | None -> None)
        in
        match probe (lift tuple) child_keys with
        | None -> ()
        | Some contrib -> (
            let key = own_key idx in
            match Keypack.Hybrid.find_opt out key with
            | Some r -> r := P.add !r contrib
            | None -> Keypack.Hybrid.add out key (ref contrib))
      done;
      out
    in
    if parallel && n > 2048 then
      Util.Pool.parallel_chunks n scan
        ~combine:(fun acc v ->
          match acc with
          | None -> Some v
          | Some a ->
              Keypack.Hybrid.iter
                (fun key r ->
                  match Keypack.Hybrid.find_opt a key with
                  | Some r0 -> r0 := P.add !r0 !r
                  | None -> Keypack.Hybrid.add a key r)
                v;
              Some a)
        ~zero:None
      |> Option.value ~default:(Keypack.Hybrid.create 1)
    else scan 0 n
  in
  let root_view = view (Join_tree.tree jt) in
  match Keypack.Hybrid.find_opt root_view (Keypack.P 0) with
  | Some r -> Fivm.Payload.cov_elem task.Cov_task.dim !r
  | None -> Cov.zero task.Cov_task.dim

let stage2_shared (db : Database.t) ~features : Cov.t =
  ring_pass ~parallel:false db (Cov_task.make db ~features)

let stage3_parallel (db : Database.t) ~features : Cov.t =
  ring_pass ~parallel:true db (Cov_task.make db ~features)

let stages =
  [
    ("baseline (interpreted, unshared)", stage0_interpreted);
    ("+ specialisation", stage1_specialised);
    ("+ sharing (covariance ring)", stage2_shared);
    ("+ parallelisation", stage3_parallel);
  ]
