(* Standard (semi)ring instances. *)

(* Boolean semiring: query satisfiability. *)
module Bool : Sig.SEMIRING with type t = bool = struct
  type t = bool

  let zero = false
  let one = true
  let add = ( || )
  let mul = ( && )
  let equal = Bool.equal
  let to_string = string_of_bool
end

(* Natural-number semiring: counting (Figure 9 left). *)
module Nat : Sig.SEMIRING with type t = int = struct
  type t = int

  let zero = 0
  let one = 1
  let add = ( + )
  let mul = ( * )
  let equal = Int.equal
  let to_string = string_of_int
end

(* Ring of integers: tuple multiplicities with additive inverse — the
   uniform treatment of inserts (+1) and deletes (-1) in IVM (Section 3.1,
   "Additive inverse"). *)
module Z : Sig.RING with type t = int = struct
  type t = int

  let zero = 0
  let one = 1
  let add = ( + )
  let mul = ( * )
  let neg x = -x
  let equal = Int.equal
  let to_string = string_of_int
end

(* Field of reals (as floats): SUM-PRODUCT aggregates (Figure 9 right). *)
module R : Sig.RING with type t = float = struct
  type t = float

  let zero = 0.0
  let one = 1.0
  let add = ( +. )
  let mul = ( *. )
  let neg x = -.x
  let equal a b = Float.abs (a -. b) <= 1e-9 *. (1.0 +. Float.abs a +. Float.abs b)
  let to_string = string_of_float
end

(* Tropical (min, +) semiring: shortest-path-style aggregates; included to
   exercise the FAQ claim that the same factorised evaluation covers
   semirings beyond sum-product. *)
module Min_plus : Sig.SEMIRING with type t = float = struct
  type t = float

  let zero = Float.infinity
  let one = 0.0
  let add = Float.min
  let mul = ( +. )
  let equal a b = a = b || Float.abs (a -. b) <= 1e-9
  let to_string = string_of_float
end

(* (max, +) semiring. *)
module Max_plus : Sig.SEMIRING with type t = float = struct
  type t = float

  let zero = Float.neg_infinity
  let one = 0.0
  let add = Float.max
  let mul = ( +. )
  let equal a b = a = b || Float.abs (a -. b) <= 1e-9
  let to_string = string_of_float
end
