lib/rings/instances.mli: Sig
