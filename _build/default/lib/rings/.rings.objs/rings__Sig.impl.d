lib/rings/sig.ml: Printf
