lib/rings/sig.mli:
