lib/rings/instances.ml: Bool Float Int Sig
