lib/rings/covariance.mli: Format Mat Sig Util Vec
