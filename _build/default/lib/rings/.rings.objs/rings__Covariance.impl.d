lib/rings/covariance.ml: Array Float Format Mat Sig Util Vec
