(** Standard (semi)ring instances for the factorised and incremental
    engines (paper Section 3.1 / Figure 9). *)

module Bool : Sig.SEMIRING with type t = bool
(** Boolean semiring: query satisfiability. *)

module Nat : Sig.SEMIRING with type t = int
(** Natural-number semiring: counting (Figure 9 left). *)

module Z : Sig.RING with type t = int
(** Ring of integers: tuple multiplicities with additive inverse — the
    uniform treatment of inserts (+1) and deletes (-1) in IVM. *)

module R : Sig.RING with type t = float
(** Field of reals (as floats): SUM-PRODUCT aggregates (Figure 9 right).
    [equal] is a relative-tolerance comparison, not bitwise equality. *)

module Min_plus : Sig.SEMIRING with type t = float
(** Tropical (min, +) semiring: shortest-path-style aggregates. *)

module Max_plus : Sig.SEMIRING with type t = float
(** (max, +) semiring. *)
