(* (Semi)ring signatures (paper Section 3.1, footnote 3).

   Factorised computation is parameterised by a commutative semiring: the
   same one-pass evaluation over a factorised join computes counts, sums,
   boolean satisfiability, or whole covariance matrices depending only on the
   carrier. Rings additionally have additive inverses, which is what makes
   inserts and deletes uniform in the IVM layer. *)

module type SEMIRING = sig
  type t

  val zero : t
  (** Additive identity; also absorbing for [mul]. *)

  val one : t
  (** Multiplicative identity. *)

  val add : t -> t -> t
  val mul : t -> t -> t
  val equal : t -> t -> bool
  val to_string : t -> string
end

module type RING = sig
  include SEMIRING

  val neg : t -> t
  (** Additive inverse: [add x (neg x) = zero]. *)
end

(* Product of two semirings, pointwise. Used to evaluate several independent
   aggregates in one pass. *)
module Pair (A : SEMIRING) (B : SEMIRING) :
  SEMIRING with type t = A.t * B.t = struct
  type t = A.t * B.t

  let zero = (A.zero, B.zero)
  let one = (A.one, B.one)
  let add (a1, b1) (a2, b2) = (A.add a1 a2, B.add b1 b2)
  let mul (a1, b1) (a2, b2) = (A.mul a1 a2, B.mul b1 b2)
  let equal (a1, b1) (a2, b2) = A.equal a1 a2 && B.equal b1 b2
  let to_string (a, b) = Printf.sprintf "(%s, %s)" (A.to_string a) (B.to_string b)
end
