(** Threshold-bucket rewriting for decision-tree node batches: the 3k
    filtered variance triples per continuous feature collapse into one
    group-by triple over a derived bucket column plus O(k) suffix sums —
    LMFAO's restructuring that per-aggregate engines cannot apply. *)

open Relational
module Spec = Aggregates.Spec
module Feature = Aggregates.Feature

val bucket_attr : string -> string
(** Name of the derived bucket column for a feature. *)

val bucket_of : float list -> Value.t -> int
(** [bucket_of thresholds v] is the number of (ascending) thresholds <= v. *)

val rewritten_batch : Feature.t -> (string * float list) list -> Aggregates.Batch.t
(** The bucketed batch: unfiltered totals, one grouped triple per bucketed
    continuous feature, one grouped triple per categorical feature. *)

val decision_node_results :
  ?options:Engine.options ->
  Database.t ->
  Feature.t ->
  thresholds:(string * float list) list ->
  (string * Spec.result) list
(** Answers the ORIGINAL [Aggregates.Batch.decision_node] aggregate ids by
    evaluating the rewritten batch over the bucket-augmented database and
    recovering each threshold answer as a suffix sum. *)
