(** Derived-column augmentation: extend relations with computed integer
    columns (bucket ids, grid cells) that downstream aggregates can group
    on. *)

open Relational

val augment : Database.t -> (string * string * (Value.t -> int)) list -> Database.t
(** [augment db [(attr, name, f); ...]] adds, to the relation owning each
    [attr], an int column [name] holding [f] of that attribute's value.
    Raises on unknown attributes. *)
