(** LMFAO: Layered Multiple Functional Aggregate Optimisation (Sections 1.4
    and 4). Evaluates a batch of SUM-PRODUCT / GROUP BY / filter aggregates
    over the natural join of a database without materialising the join:
    multi-root decomposition over the join tree, per-node deduplication of
    identical partial aggregates (sharing), one shared scan per node, and
    optional domain parallelism. *)

open Relational
module Spec = Aggregates.Spec
module Batch = Aggregates.Batch

exception Unsupported of string
(** Raised for filters that do not decompose per attribute (e.g. additive
    inequalities — see [Ml.Inequality] / [Ml.Svm] for those). *)

type options = {
  share : bool;  (** dedup identical partial aggregates (default true) *)
  parallel : bool;  (** chunked scans + parallel subtree tasks *)
  multi_root : bool;  (** per-aggregate root choice (default true) *)
  chunk_threshold : int;  (** parallel scans only above this cardinality *)
}

val default_options : options

type stats = {
  mutable views : int;  (** views (node plans) computed *)
  mutable partials : int;  (** distinct partial aggregates across all views *)
  mutable shared_away : int;  (** batch restrictions collapsed by dedup *)
}

val choose_root : Join_tree.t -> default_root:string -> Spec.t -> string
(** The multi-root policy: group-bys root at their first group attribute's
    relation; products at their first term's owner; counts at the smallest
    relation. *)

val run :
  ?options:options -> Database.t -> Batch.t -> (string * Spec.result) list * stats
(** Evaluate the whole batch; results are keyed by aggregate id.
    @raise Unsupported on non-decomposable filters
    @raise Join_tree.Cyclic on cyclic schemas *)

val run_any :
  ?options:options -> Database.t -> Batch.t -> (string * Spec.result) list
(** Like {!run}, but cyclic schemas fall back to materialising the join
    with {!Factorized.Wcoj} and evaluating the batch flat (the paper's
    footnote-4 bag materialisation). *)

val run_to_table :
  ?options:options -> Database.t -> Batch.t -> (string, Spec.result) Hashtbl.t * stats
(** Like {!run}, as a lookup table. *)
