lib/lmfao/derived.ml: Array Database Hashtbl List Option Printf Relation Relational Schema Value
