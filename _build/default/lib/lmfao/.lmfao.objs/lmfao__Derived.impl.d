lib/lmfao/derived.ml: Array Column Database Hashtbl List Option Printf Relation Relational Schema Value
