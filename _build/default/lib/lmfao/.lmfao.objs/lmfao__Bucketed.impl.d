lib/lmfao/bucketed.ml: Aggregates Database Derived Engine Hashtbl Lazy List Option Printf Relational Value
