lib/lmfao/bucketed.ml: Aggregates Database Derived Engine Hashtbl List Option Printf Relational Value
