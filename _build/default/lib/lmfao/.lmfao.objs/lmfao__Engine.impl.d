lib/lmfao/engine.ml: Aggregates Array Database Factorized Format Hashtbl Join_tree List Option Predicate Queue Relation Relational Schema Tuple Util Value
