lib/lmfao/engine.ml: Aggregates Array Column Database Factorized Format Hashtbl Join_tree Keypack Lazy List Obs Option Predicate Queue Relation Relational Schema Util
