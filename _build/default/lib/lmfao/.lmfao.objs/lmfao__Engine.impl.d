lib/lmfao/engine.ml: Aggregates Array Database Factorized Format Hashtbl Join_tree Lazy List Obs Option Predicate Queue Relation Relational Schema Tuple Util Value
