lib/lmfao/bucketed.mli: Aggregates Database Engine Relational Value
