lib/lmfao/derived.mli: Database Relational Value
