lib/lmfao/engine.mli: Aggregates Database Hashtbl Join_tree Lazy Relational
