(* Derived-column augmentation: extend a relation with computed columns
   (bucket ids, grid cells) so that downstream group-by aggregates can group
   on them. Used by the threshold-bucket rewriting of [Bucketed] and by the
   Rk-means grid coreset. *)

open Relational

(* [augment db specs] returns a database where, for each (attr, new_name,
   f), the relation owning [attr] (first one containing it) gains an integer
   column [new_name] = [f value_of_attr]. *)
let augment (db : Database.t) (specs : (string * string * (Value.t -> int)) list) :
    Database.t =
  let by_owner = Hashtbl.create 8 in
  List.iter
    (fun ((attr, _, _) as spec) ->
      let owner =
        match
          List.find_opt
            (fun r -> Schema.mem (Relation.schema r) attr)
            (Database.relations db)
        with
        | Some r -> Relation.name r
        | None -> invalid_arg (Printf.sprintf "Derived.augment: unknown attribute %s" attr)
      in
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_owner owner) in
      Hashtbl.replace by_owner owner (spec :: cur))
    specs;
  let relations =
    List.map
      (fun rel ->
        match Hashtbl.find_opt by_owner (Relation.name rel) with
        | None | Some [] -> rel
        | Some specs ->
            let specs = List.rev specs in
            let schema = Relation.schema rel in
            let schema' =
              Schema.of_list
                (Schema.attrs schema
                @ List.map (fun (_, name, _) -> Schema.attr name Value.TInt) specs)
            in
            let positions =
              List.map (fun (attr, _, f) -> (Schema.position schema attr, f)) specs
            in
            (* columnar: copy the existing columns wholesale, then compute
               each derived column from its single source column *)
            let n = Relation.cardinality rel in
            let base =
              Array.map (fun c -> Column.sub c n) (Relation.columns rel)
            in
            let extra =
              Array.of_list
                (List.map
                   (fun (pos, f) ->
                     let src = Relation.column rel pos in
                     Column.of_ints (Array.init n (fun i -> f (Column.get src i))))
                   positions)
            in
            Relation.of_columns (Relation.name rel) schema'
              (Array.append base extra) n)
      (Database.relations db)
  in
  Database.create (Database.name db ^ "+derived") relations
