(* Feature maps: which attributes of the feature-extraction query play which
   role in the learning task. The batch synthesis (Section 2) is driven
   entirely by this map. *)

type t = {
  response : string option; (* the predicted attribute, if supervised *)
  continuous : string list; (* continuous features (response excluded) *)
  categorical : string list; (* categorical features (group-by encoded) *)
  thresholds_per_feature : int; (* decision-tree threshold candidates *)
}

let make ?response ?(thresholds_per_feature = 30) ~continuous ~categorical () =
  let all = Option.to_list response @ continuous @ categorical in
  let sorted = List.sort compare all in
  let rec dup = function
    | a :: b :: _ when a = b -> Some a
    | _ :: rest -> dup rest
    | [] -> None
  in
  (match dup sorted with
  | Some a -> invalid_arg (Printf.sprintf "Feature.make: %s has two roles" a)
  | None -> ());
  { response; continuous; categorical; thresholds_per_feature }

(* Continuous features plus the response: the variables of the covariance
   matrix (the paper's n+1 includes the response). *)
let numeric t = t.continuous @ Option.to_list t.response

let all t = t.continuous @ t.categorical @ Option.to_list t.response

let feature_count t = List.length (all t)

let pp ppf t =
  Format.fprintf ppf "features: %d continuous, %d categorical%s"
    (List.length t.continuous)
    (List.length t.categorical)
    (match t.response with Some r -> ", response " ^ r | None -> "")
