(** The aggregate language of Section 2:

    [SUM(X1^p1 * ... * Xk^pk) WHERE filter GROUP BY Z1,...,Zm]

    with continuous attributes in the product, categorical attributes in the
    group-by (the sparse-tensor encoding of one-hot interactions), and
    filters covering thresholds, set membership and additive inequalities.
    The empty product is COUNT. *)

open Relational

type t = {
  id : string;
  terms : (string * int) list;  (** (attribute, power), sorted, powers >= 1 *)
  group_by : string list;  (** sorted categorical attributes *)
  filter : Predicate.t;
}

val make :
  ?filter:Predicate.t ->
  id:string ->
  terms:(string * int) list ->
  group_by:string list ->
  unit ->
  t
(** Normalises term order and group-by; drops zero powers. *)

val count : id:string -> t
(** COUNT: no terms, no groups, no filter. *)

val attrs : t -> string list
(** Sorted distinct attributes mentioned anywhere in the aggregate. *)

val canonical : t -> string
(** Structural key ignoring [id] — the dedup key for LMFAO's sharing. *)

val is_scalar : t -> bool

type result = ((string * Value.t) list * float) list
(** Grouped sums keyed by sorted assignments; scalar results use key []. *)

val scalar_result : result -> float
(** The value of a scalar result (0 when empty). Raises on grouped results. *)

val lookup : result -> (string * Value.t) list -> float
(** Value at an assignment, 0 when absent. *)

val eval_flat : Relation.t -> t -> result
(** Reference evaluation: one scan over a materialised data matrix with a
    hash group-by. Also the per-aggregate baselines' inner loop. *)

val to_sql : ?relation:string -> t -> string
(** The SQL the aggregate stands for over the feature-extraction query
    (Section 2.1's "SELECT X, agg FROM Q GROUP BY X"). *)

val result_equal : ?eps:float -> result -> result -> bool
val pp : Format.formatter -> t -> unit
