lib/aggregates/feature.mli: Format
