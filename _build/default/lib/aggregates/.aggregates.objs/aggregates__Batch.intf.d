lib/aggregates/batch.mli: Database Feature Format Relation Relational Spec
