lib/aggregates/engine_intf.mli: Batch Relational Spec
