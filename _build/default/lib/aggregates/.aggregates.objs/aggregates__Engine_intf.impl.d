lib/aggregates/engine_intf.ml: Batch List Relational Spec
