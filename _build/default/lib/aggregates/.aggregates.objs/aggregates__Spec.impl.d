lib/aggregates/spec.ml: Array Buffer Column Float Format Keypack List Predicate Printf Relation Relational Schema String Value
