lib/aggregates/spec.ml: Array Buffer Float Format List Predicate Printf Relation Relational Schema String Tuple Value
