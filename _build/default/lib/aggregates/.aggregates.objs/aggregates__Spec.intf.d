lib/aggregates/spec.mli: Format Predicate Relation Relational Value
