lib/aggregates/batch.ml: Array Database Feature Format List Predicate Printf Relation Relational Schema Spec Value
