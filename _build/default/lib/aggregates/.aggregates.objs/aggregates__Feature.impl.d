lib/aggregates/feature.ml: Format List Option Printf
