(** Feature maps: the roles the join's attributes play in a learning task.
    Batch synthesis (Section 2) is driven entirely by this. *)

type t = {
  response : string option;  (** predicted attribute, if supervised *)
  continuous : string list;  (** continuous features (response excluded) *)
  categorical : string list;  (** categorical features (group-by encoded) *)
  thresholds_per_feature : int;  (** decision-tree threshold candidates *)
}

val make :
  ?response:string ->
  ?thresholds_per_feature:int ->
  continuous:string list ->
  categorical:string list ->
  unit ->
  t
(** Raises if an attribute is given two roles. [thresholds_per_feature]
    defaults to 30. *)

val numeric : t -> string list
(** Continuous features plus the response: the covariance matrix's
    variables (the paper's n+1 includes the response). *)

val all : t -> string list
val feature_count : t -> int
val pp : Format.formatter -> t -> unit
