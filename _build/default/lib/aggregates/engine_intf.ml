(* The common shape of a batch-of-aggregates engine (LMFAO, the unshared
   DBX/MonetDB stand-ins, the structure-agnostic pipeline): a name for
   selection, engine-specific options with a default, and one entry point
   answering a whole batch over a database. Having one module type lets the
   CLI and the bench harness hold engines as a first-class-module list
   instead of per-engine match arms. *)

module type S = sig
  val name : string
  (** Short selector used by [borg agg --engine] and the bench harness. *)

  val description : string
  (** One-line description for listings. *)

  type options

  val default_options : options

  val eval_batch :
    ?options:options ->
    Relational.Database.t ->
    Batch.t ->
    (string * Spec.result) list
  (** Answer every aggregate of the batch, keyed by aggregate id. Engines
      that need a materialised join build it internally (its cost is part of
      the engine's answer time, as in the paper's comparisons). Cyclic
      schemas are handled by each engine's own fallback rather than raised. *)
end

type t = (module S)

let name (module E : S) = E.name
let description (module E : S) = E.description

let find engines n = List.find_opt (fun e -> name e = n) engines

let eval (module E : S) db batch = E.eval_batch db batch
