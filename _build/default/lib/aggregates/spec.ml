(* The aggregate language of Section 2.

   Every data-dependent quantity needed by the supported models is a
   SUM-PRODUCT aggregate over the feature-extraction query:

     SUM(X_{i1}^{p1} * ... * X_{ik}^{pk})  WHERE filter  GROUP BY Z1,...,Zm

   with continuous attributes in the product, categorical attributes in the
   group-by (the sparse-tensor encoding of one-hot interactions), and
   filters covering decision-tree thresholds/in-sets and the additive
   inequalities of Section 2.3. An empty product is COUNT. *)

open Relational

type t = {
  id : string;
  terms : (string * int) list; (* (attribute, power), sorted, powers >= 1 *)
  group_by : string list; (* sorted categorical attributes *)
  filter : Predicate.t;
}

let make ?(filter = Predicate.True) ~id ~terms ~group_by () =
  let terms =
    List.sort compare (List.filter (fun (_, p) -> p > 0) terms)
  in
  let group_by = List.sort_uniq compare group_by in
  { id; terms; group_by; filter }

let count ~id = make ~id ~terms:[] ~group_by:[] ()

let attrs t =
  List.sort_uniq compare
    (List.map fst t.terms @ t.group_by @ Predicate.attrs t.filter)

(* Canonical structural key, ignoring [id]: used to deduplicate identical
   (partial) aggregates within a batch — LMFAO's sharing. *)
let canonical t =
  let terms = String.concat "*" (List.map (fun (a, p) -> Printf.sprintf "%s^%d" a p) t.terms) in
  let groups = String.concat "," t.group_by in
  (* the trivial filter skips the Format machinery: [canonical] runs once
     per spec per node per root during LMFAO planning *)
  let filter =
    match t.filter with
    | Predicate.True -> "true"
    | f -> Format.asprintf "%a" Predicate.pp f
  in
  Printf.sprintf "S[%s|%s|%s]" terms groups filter

let is_scalar t = t.group_by = []

(* Results: grouped sums keyed by sorted (attribute, value) assignments.
   Scalar aggregates have the single key []. *)
type result = ((string * Value.t) list * float) list

let scalar_result (r : result) =
  match r with
  | [] -> 0.0
  | [ ([], v) ] -> v
  | _ -> invalid_arg "Spec.scalar_result: grouped result"

let lookup (r : result) key =
  let key = List.sort compare key in
  match List.find_opt (fun (k, _) -> k = key) r with
  | Some (_, v) -> v
  | None -> 0.0

(* Reference evaluation over a materialised data matrix: one columnar scan,
   hash group-by on packed keys. This is also what the per-aggregate
   baselines use. *)
let eval_flat rel t : result =
  let schema = Relation.schema rel in
  let cols = Relation.columns rel in
  let keep = Predicate.compile_cols schema cols t.filter in
  let term_positions =
    List.map (fun (a, p) -> (Schema.position schema a, p)) t.terms
  in
  let group_positions = List.map (fun a -> (a, Schema.position schema a)) t.group_by in
  let key_positions = Array.of_list (List.map snd group_positions) in
  let key_of = Relation.extractor rel key_positions in
  let key_arity = Array.length key_positions in
  let table : float ref Keypack.Hybrid.t = Keypack.Hybrid.create 64 in
  ignore (Relation.scan rel);
  for i = 0 to Relation.cardinality rel - 1 do
    if keep i then begin
      let v =
        List.fold_left
          (fun acc (pos, p) ->
            let x = Column.float_at cols.(pos) i in
            let rec pow acc k = if k = 0 then acc else pow (acc *. x) (k - 1) in
            pow acc p)
          1.0 term_positions
      in
      let key = key_of i in
      match Keypack.Hybrid.find_opt table key with
      | Some r -> r := !r +. v
      | None -> Keypack.Hybrid.add table key (ref v)
    end
  done;
  let names = List.map fst group_positions in
  Keypack.Hybrid.fold
    (fun key v acc ->
      let tup = Keypack.key_tuple key_arity key in
      let assignment =
        List.sort compare (List.map2 (fun n x -> (n, x)) names (Array.to_list tup))
      in
      (assignment, !v) :: acc)
    table []

let result_equal ?(eps = 1e-6) (a : result) (b : result) =
  let norm r = List.sort compare r in
  let a = norm a and b = norm b in
  List.length a = List.length b
  && List.for_all2
       (fun (ka, va) (kb, vb) ->
         ka = kb && Float.abs (va -. vb) <= eps *. (1.0 +. Float.abs va))
       a b

(* The SQL this aggregate stands for, over the feature-extraction query
   [relation] (Section 2.1: "SELECT X, agg FROM Q GROUP BY X"). *)
let to_sql ?(relation = "Q") t =
  let term_sql =
    match t.terms with
    | [] -> "1"
    | ts ->
        String.concat " * "
          (List.map
             (fun (a, p) ->
               String.concat " * " (List.init p (fun _ -> a)))
             ts)
  in
  let buf = Buffer.create 64 in
  Buffer.add_string buf "SELECT ";
  List.iter (fun g -> Buffer.add_string buf (g ^ ", ")) t.group_by;
  Buffer.add_string buf (Printf.sprintf "SUM(%s) FROM %s" term_sql relation);
  if t.filter <> Predicate.True then
    Buffer.add_string buf (" WHERE " ^ Predicate.to_sql t.filter);
  if t.group_by <> [] then
    Buffer.add_string buf (" GROUP BY " ^ String.concat ", " t.group_by);
  Buffer.add_string buf ";";
  Buffer.contents buf

let pp ppf t =
  let terms =
    match t.terms with
    | [] -> "1"
    | ts -> String.concat "*" (List.map (fun (a, p) -> if p = 1 then a else Printf.sprintf "%s^%d" a p) ts)
  in
  Format.fprintf ppf "%s: SUM(%s)" t.id terms;
  if t.filter <> Predicate.True then Format.fprintf ppf " WHERE %a" Predicate.pp t.filter;
  if t.group_by <> [] then
    Format.fprintf ppf " GROUP BY %s" (String.concat "," t.group_by)
